"""Streaming incremental checking: verdicts that keep pace with the stream.

Elle's pitch is that anomaly inference is cheap enough to run continuously
against a live system (§7.5), but :func:`~repro.core.checker.check` is
batch-shaped: every call re-derives the history index, re-runs every per-key
plan, and re-searches the graph.  This module adds the online mode.  A
:class:`StreamingChecker` ingests a history as successive chunks of
operations and emits, after each chunk, the verdict for the prefix observed
so far — with the expensive half of the work made incremental:

* the history and its :class:`~repro.history.index.HistoryIndex` are
  extended in place (:meth:`~repro.history.history.History.extend`), never
  re-scanned;
* per-key analysis batches are cached and recomputed only for *dirty* keys
  — those whose slice changed, detected by the slice ``version`` counter
  (plus the key's merge position, which tags encode);
* internal-consistency results are cached per transaction and refreshed
  only for transactions the chunk added or upgraded;
* the dependency graph is reassembled from the cached batches through the
  deterministic merge of :mod:`repro.core.keyspace`, and the cycle search
  runs through the same SCC refinement tree as batch checking — on a clean
  prefix a single full-graph Tarjan resolves all sixteen passes.

**Equivalence.**  After each chunk the emitted :class:`CheckResult` is
byte-identical to ``check()`` of the same prefix — same anomalies in the
same order with the same messages and evidence, same graph interning order,
same verdict.  ``tests/properties/test_streaming_equivalence.py`` pins this
for every workload, fault injector, and hypothesis-chosen chunk boundaries.

**Chunk-boundary semantics.**  A chunk may split a transaction: its
invocation arrives now, its completion later (or never).  Until the
completion arrives the transaction is *provisionally indeterminate* —
exactly how a batch check of the same prefix would treat it: it can receive
dependency edges but never emits process or real-time edges, so no verdict
claims are retracted when the completion lands.  When it does land, the
transaction is *upgraded* in place and every key it touched is re-analyzed.
Anomaly sets are therefore not monotone across chunks — a read that looked
incompatible against a short version order can become a clean prefix of a
longer one — and :class:`StreamUpdate` reports both the newly appeared and
the newly resolved anomalies.

An error (malformed operation, broken recoverability contract) poisons the
stream: the failing :meth:`StreamingChecker.extend` raises, and every later
call re-raises the same error, because the half-extended history can no
longer be trusted.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from ..history import History
from ..history.ops import Op
from .analysis import Analysis
from .anomalies import Anomaly
from .checker import CheckResult, finish_analysis
from .consistency import SERIALIZABLE, _validate as _validate_model
from .gcpause import paused_gc
from .keyspace import PHASE_INTERNAL, PLANS, Batch, _merge
from .orders import add_process_edges, add_realtime_edges, add_timestamp_edges
from .profiling import Profile, stage
from .validate import validate_workload


@dataclass(frozen=True)
class StreamUpdate:
    """One chunk's outcome: the prefix verdict plus what changed.

    ``result`` is the full batch-equivalent :class:`CheckResult` for the
    prefix observed so far.  ``new_anomalies`` lists anomalies absent from
    the previous chunk's verdict; ``resolved`` counts anomalies that
    disappeared (a longer prefix can retroactively legitimize a read).
    ``reanalyzed_keys`` / ``reused_keys`` expose the incremental economics:
    how many per-key plans actually re-ran versus came from cache.
    """

    chunk: int
    ops: int
    txns: int
    result: CheckResult
    new_anomalies: Tuple[Anomaly, ...]
    resolved: int
    reanalyzed_keys: int
    reused_keys: int

    def summary(self) -> str:
        """A one-line digest, the ``--follow`` progress format."""
        verdict = "VALID" if self.result.valid else "INVALID"
        parts = [
            f"chunk {self.chunk}: +{self.ops} ops ({self.txns} txns)",
            f"{verdict} under {self.result.consistency_model}",
        ]
        if self.new_anomalies:
            counts = Counter(a.name for a in self.new_anomalies)
            named = ", ".join(f"{name} x{n}" for name, n in sorted(counts.items()))
            parts.append(f"+{len(self.new_anomalies)} anomalies ({named})")
        else:
            parts.append("+0 anomalies")
        if self.resolved:
            parts.append(f"{self.resolved} resolved")
        return "; ".join(parts)


#: Cached per-key analysis: (slice version, merge position, batch).
_CacheEntry = Tuple[int, int, Batch]


class StreamingChecker:
    """Check an unbounded operation stream one chunk at a time.

    Construction mirrors :func:`~repro.core.checker.check`'s keywords;
    extra options (e.g. ``sources`` for rw-register) pass through to the
    workload's :class:`~repro.core.keyspace.KeyspacePlan`.  Feed chunks with
    :meth:`extend`; each call returns a :class:`StreamUpdate` whose
    ``result`` is byte-identical to a batch check of the prefix.
    """

    def __init__(
        self,
        workload: str = "list-append",
        consistency_model: str = SERIALIZABLE,
        process_edges: bool = True,
        realtime_edges: bool = True,
        timestamp_edges: bool = False,
        profile: Optional[Profile] = None,
        **plan_options: Any,
    ) -> None:
        if workload not in PLANS:
            raise ValueError(
                f"unknown workload {workload!r}; known: {sorted(PLANS)}"
            )
        _validate_model(consistency_model)
        self.workload = workload
        self.consistency_model = consistency_model
        self.history = History(())
        self.chunks = 0
        self.result: Optional[CheckResult] = None
        self._process_edges = process_edges
        self._realtime_edges = realtime_edges
        self._timestamp_edges = timestamp_edges
        self._profile = profile
        self._plan_options = plan_options
        self._key_cache: Dict[Any, _CacheEntry] = {}
        #: Cached internal-consistency anomaly blocks, per transaction id
        #: (only transactions that actually have anomalies are stored).
        self._internal: Dict[int, Tuple[Tuple[int, int, int], list]] = {}
        self._prev_counts: Counter = Counter()
        self._error: Optional[BaseException] = None

    # ------------------------------------------------------------------

    def extend(self, ops: Sequence[Op]) -> StreamUpdate:
        """Ingest one chunk and return the refreshed prefix verdict."""
        if self._error is not None:
            raise self._error
        try:
            with paused_gc():
                return self._extend(ops)
        except BaseException as exc:
            self._error = exc
            raise

    def _extend(self, ops: Sequence[Op]) -> StreamUpdate:
        profile = self._profile
        ops_before = len(self.history.ops)
        with stage(profile, "stream/ingest"):
            delta = self.history.extend(ops)
            changed = delta.changed
            validate_workload(changed, self.workload)
        # Plan construction is cheap (the index is extended, not rebuilt)
        # and re-applies the workload's recoverability contract exactly as
        # a batch check of this prefix would.
        with stage(profile, "stream/plan"):
            plan = PLANS[self.workload](self.history, **self._plan_options)
            for txn in changed:
                if txn.committed:
                    found = plan.check_internal(txn)
                    if found:
                        self._internal[txn.id] = (
                            (PHASE_INTERNAL, txn.id, 0),
                            found,
                        )
                    else:
                        self._internal.pop(txn.id, None)
        with stage(profile, "stream/keys"):
            anomaly_blocks = list(self._internal.values())
            edge_blocks = []
            index = plan.index
            cache = self._key_cache
            # Evict every dirty key up front.  The version clock alone
            # already prevents stale hits (versions never repeat, even for
            # a deleted-and-recreated slice), but eviction also drops
            # entries for keys an upgrade removed from the history, which
            # would otherwise linger in the cache forever.
            for key in delta.dirty_keys or ():
                cache.pop(key, None)
            reused = reanalyzed = 0
            for key in plan.keys():
                slice_ = index.slices[key]
                pos = plan.key_pos(key)
                entry = cache.get(key)
                if (
                    entry is not None
                    and entry[0] == slice_.version
                    and entry[1] == pos
                ):
                    batch = entry[2]
                    reused += 1
                else:
                    batch = plan.analyze_key(key)
                    cache[key] = (slice_.version, pos, batch)
                    reanalyzed += 1
                key_anomalies, key_edges = batch
                anomaly_blocks.extend(key_anomalies)
                edge_blocks.extend(key_edges)
        with stage(profile, "stream/merge"):
            analysis = Analysis(history=self.history, workload=self.workload)
            _merge(analysis, [(anomaly_blocks, edge_blocks)])
        with stage(profile, "stream/orders"):
            if self._process_edges:
                add_process_edges(analysis)
            if self._realtime_edges:
                add_realtime_edges(analysis)
            if self._timestamp_edges:
                add_timestamp_edges(analysis)
        result = finish_analysis(analysis, self.consistency_model, profile)
        if profile is not None:
            profile.count("stream.keys_reused", reused)
            profile.count("stream.keys_reanalyzed", reanalyzed)

        self.chunks += 1
        self.result = result
        counts = Counter(
            (a.name, a.txns, a.message) for a in result.anomalies
        )
        fresh = counts - self._prev_counts
        resolved = sum((self._prev_counts - counts).values())
        new_anomalies = []
        budget = Counter(fresh)
        for anomaly in result.anomalies:
            ident = (anomaly.name, anomaly.txns, anomaly.message)
            if budget[ident] > 0:
                budget[ident] -= 1
                new_anomalies.append(anomaly)
        self._prev_counts = counts
        return StreamUpdate(
            chunk=self.chunks,
            ops=len(self.history.ops) - ops_before,
            txns=len(self.history),
            result=result,
            new_anomalies=tuple(new_anomalies),
            resolved=resolved,
            reanalyzed_keys=reanalyzed,
            reused_keys=reused,
        )


def check_stream(
    chunks: Iterable[Sequence[Op]],
    workload: str = "list-append",
    consistency_model: str = SERIALIZABLE,
    process_edges: bool = True,
    realtime_edges: bool = True,
    timestamp_edges: bool = False,
    profile: Optional[Profile] = None,
    **options: Any,
) -> CheckResult:
    """Check a chunked operation stream; returns the final prefix verdict.

    The streaming analogue of :func:`~repro.core.checker.check`: consumes an
    iterable of operation chunks (e.g. from
    :func:`~repro.history.io.iter_op_chunks`), re-checks the growing prefix
    incrementally after each one, and returns the last verdict — which is
    byte-identical to ``check()`` over the concatenated operations.  Use
    :class:`StreamingChecker` directly for per-chunk updates.
    """
    checker = StreamingChecker(
        workload=workload,
        consistency_model=consistency_model,
        process_edges=process_edges,
        realtime_edges=realtime_edges,
        timestamp_edges=timestamp_edges,
        profile=profile,
        **options,
    )
    update: Optional[StreamUpdate] = None
    for chunk in chunks:
        update = checker.extend(chunk)
    if update is None:  # empty stream: the verdict on the empty observation
        update = checker.extend(())
    return update.result
