"""An in-memory MVCC database simulator with fault injection."""

from .faults import (
    INJECTORS,
    DgraphShardMigration,
    FaunaInternal,
    TiDBRetry,
    Windowed,
    YugaByteStaleRead,
)
from .mvcc import (
    ConflictAbort,
    DBTransaction,
    FaultInjector,
    Isolation,
    MVCCDatabase,
)
from .replicated import ReplicatedDatabase, ReplicatedTransaction
from .store import VersionedStore

__all__ = [
    "ConflictAbort",
    "DBTransaction",
    "DgraphShardMigration",
    "FaultInjector",
    "FaunaInternal",
    "INJECTORS",
    "Isolation",
    "MVCCDatabase",
    "ReplicatedDatabase",
    "ReplicatedTransaction",
    "TiDBRetry",
    "VersionedStore",
    "Windowed",
    "YugaByteStaleRead",
]
