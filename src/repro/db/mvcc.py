"""An in-memory transactional database with tunable isolation.

This is the substrate the paper's evaluation runs against: §7.5 generates
histories by "simulating clients interacting with an in-memory
serializable-snapshot-isolated database".  Four protocols are provided, each
an honest miniature of a real implementation class:

* ``serializable`` — optimistic concurrency control: snapshot reads, and at
  commit both first-committer-wins on the write set and validation that
  every key read is still current.  Equivalent to executing at the commit
  point: serializable.
* ``snapshot-isolation`` — snapshot reads plus first-committer-wins only.
  Lost updates are impossible, write skew (G2) is not.
* ``read-committed`` — each read sees the latest committed version at that
  moment; writes apply atomically at commit on the latest state with no
  conflict checks.  Read skew (G-single) and fractured reads abound.
* ``read-uncommitted`` — the pathological floor: writes mutate a single
  shared state the moment they execute, aborts roll nothing back.  Produces
  G0, G1a, G1b, G1c, and dirty updates.

Write micro-ops buffer their *arguments*; the state transition applies
server-side at commit (like SQL ``CONCAT``), so a transaction's effect
lands on whatever version is current when it commits.

Fault injectors (see :mod:`repro.db.faults`) hook transaction begin, read,
conflict handling, and validation to reproduce the case-study bugs.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional

from ..core.objects import ObjectModel
from ..history.ops import MicroOp, READ
from .store import VersionedStore


class Isolation(enum.Enum):
    """Supported isolation protocols."""

    SERIALIZABLE = "serializable"
    SNAPSHOT_ISOLATION = "snapshot-isolation"
    READ_COMMITTED = "read-committed"
    READ_UNCOMMITTED = "read-uncommitted"


class ConflictAbort(Exception):
    """The database aborted a transaction (conflict or deadlock)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class WouldBlock(Exception):
    """The operation must wait for a lock; retry after other progress.

    Raised only under read-committed, whose writes take per-key locks (like
    row locks under SQL ``UPDATE``).  The caller should re-issue the same
    micro-op later; lock waits that would deadlock raise
    :class:`ConflictAbort` instead."""

    def __init__(self, key: Any) -> None:
        super().__init__(f"write lock on {key!r} is held")
        self.key = key


class DBTransaction:
    """Server-side transaction state."""

    __slots__ = (
        "id",
        "start_seq",
        "advertised_start_seq",
        "write_args",
        "read_versions",
        "skip_validation",
        "finished",
    )

    def __init__(self, txn_id: int, start_seq: int) -> None:
        self.id = txn_id
        self.start_seq = start_seq
        # The snapshot timestamp the database *reports* to clients (§5.1).
        # Fault injectors may silently move start_seq while leaving this
        # untouched — exactly YugaByte's stale-read-timestamp bug shape.
        self.advertised_start_seq = start_seq
        # key -> list of write arguments, in execution order.
        self.write_args: Dict[Any, List[Any]] = {}
        # key -> commit seq of the version this txn read (for validation).
        self.read_versions: Dict[Any, int] = {}
        self.skip_validation = False
        self.finished = False


class FaultInjector:
    """Hook points for reproducing real-world bugs.  Default: no faults."""

    def on_begin(self, txn: DBTransaction, db: "MVCCDatabase") -> None:
        """Adjust a fresh transaction (e.g. assign a stale snapshot)."""

    def on_read(
        self,
        txn: DBTransaction,
        key: Any,
        value: Any,
        raw: Any,
        db: "MVCCDatabase",
    ) -> Any:
        """Transform a read result.  ``value`` includes the transaction's own
        buffered writes; ``raw`` is the underlying version without them."""
        return value

    def on_conflict(self, txn: DBTransaction, db: "MVCCDatabase") -> str:
        """React to a write-write conflict.

        * ``"abort"`` — correct first-committer-wins behavior.
        * ``"retry-latest"`` — re-apply buffered writes on the latest state
          and commit, ignoring the conflict (TiDB's documented retry: stale
          reads survive, writes land after the conflicting commit).
        * ``"retry-blind"`` — replay writes over the transaction's snapshot,
          clobbering concurrent commits (the lost-update flavor).
        """
        return "abort"


class MVCCDatabase:
    """The simulated database.  One instance serves every client."""

    def __init__(
        self,
        model: ObjectModel,
        isolation: Isolation = Isolation.SERIALIZABLE,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.model = model
        self.isolation = isolation
        self.faults = faults or FaultInjector()
        self.store = VersionedStore(model)
        # Shared mutable state for read-uncommitted mode.
        self._dirty: Dict[Any, Any] = {}
        # Per-key write locks for read-committed mode.
        self._locks: Dict[Any, int] = {}          # key -> holder txn id
        self._lock_owners: Dict[int, set] = {}    # txn id -> held keys
        self._waiting_on: Dict[int, int] = {}     # txn id -> holder txn id
        self._next_txn_id = 0
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    # Transaction lifecycle

    def begin(self) -> DBTransaction:
        txn = DBTransaction(self._next_txn_id, self.store.current_seq)
        self._next_txn_id += 1
        self.faults.on_begin(txn, self)
        return txn

    def execute(self, txn: DBTransaction, mop: MicroOp) -> MicroOp:
        """Run one micro-op; returns the completed micro-op (reads filled)."""
        if txn.finished:
            raise ValueError(f"transaction {txn.id} already finished")
        if mop.fn == READ:
            value = self._read(txn, mop.key)
            return MicroOp(READ, mop.key, value)
        self._write(txn, mop.key, mop.value)
        return mop

    def commit(self, txn: DBTransaction) -> Optional[int]:
        """Commit; raises :class:`ConflictAbort` if the protocol rejects it.

        Returns the commit timestamp (the commit sequence number for
        writers, the current watermark for read-only transactions), or
        ``None`` under read-uncommitted, which has no commit points.
        """
        if txn.finished:
            raise ValueError(f"transaction {txn.id} already finished")
        txn.finished = True
        if self.isolation is Isolation.READ_UNCOMMITTED:
            self.commits += 1  # effects are already live
            return None

        conflicted = self._write_write_conflict(txn)
        if self.isolation is Isolation.READ_COMMITTED:
            conflicted = False  # no conflict detection at all
        if conflicted:
            action = self.faults.on_conflict(txn, self)
            if action == "abort":
                self.aborts += 1
                raise ConflictAbort(
                    "first-committer-wins: write-write conflict"
                )
            if action == "retry-latest":
                self._install_on_latest(txn)
                self.commits += 1
                return self.store.current_seq
            if action == "retry-blind":
                self._install_from_snapshot(txn)
                self.commits += 1
                return self.store.current_seq
            raise ValueError(f"unknown conflict action {action!r}")

        if (
            self.isolation is Isolation.SERIALIZABLE
            and txn.write_args  # read-only txns serialize at their snapshot
            and not txn.skip_validation
            and not self._reads_still_current(txn)
        ):
            self.aborts += 1
            raise ConflictAbort("read validation failed: stale read set")

        self._install_on_latest(txn)
        self._release_locks(txn)
        self.commits += 1
        return self.store.current_seq

    def abort(self, txn: DBTransaction) -> None:
        """Client-side abort.  Under read-uncommitted nothing rolls back."""
        if not txn.finished:
            txn.finished = True
            self._release_locks(txn)
            self.aborts += 1

    # ------------------------------------------------------------------
    # Reads

    def _read(self, txn: DBTransaction, key: Any) -> Any:
        if self.isolation is Isolation.READ_UNCOMMITTED:
            raw = self._dirty.get(key, self.model.initial)
            return self.faults.on_read(txn, key, raw, raw, self)

        if self.isolation is Isolation.READ_COMMITTED:
            raw = self.store.read_latest(key)
        else:  # snapshot isolation / serializable
            raw = self.store.read_at(key, txn.start_seq)
            txn.read_versions.setdefault(
                key, self.store.version_seq(key, txn.start_seq)
            )
        value = self._overlay_own_writes(txn, key, raw)
        return self.faults.on_read(txn, key, value, raw, self)

    def _overlay_own_writes(self, txn: DBTransaction, key: Any, base: Any) -> Any:
        value = base
        for arg in txn.write_args.get(key, ()):
            value = self.model.apply(value, arg)
        return value

    # ------------------------------------------------------------------
    # Writes

    def _write(self, txn: DBTransaction, key: Any, arg: Any) -> None:
        if self.isolation is Isolation.READ_UNCOMMITTED:
            current = self._dirty.get(key, self.model.initial)
            self._dirty[key] = self.model.apply(current, arg)
            return
        if self.isolation is Isolation.READ_COMMITTED:
            self._acquire_lock(txn, key)
        txn.write_args.setdefault(key, []).append(arg)

    # ------------------------------------------------------------------
    # Locking (read-committed only)

    def _acquire_lock(self, txn: DBTransaction, key: Any) -> None:
        holder = self._locks.get(key)
        if holder is None or holder == txn.id:
            self._locks[key] = txn.id
            self._lock_owners.setdefault(txn.id, set()).add(key)
            self._waiting_on.pop(txn.id, None)
            return
        # Wound on deadlock: walk the waits-for chain from the holder.
        self._waiting_on[txn.id] = holder
        node = holder
        while node is not None:
            if node == txn.id:
                self._waiting_on.pop(txn.id, None)
                txn.finished = True
                self._release_locks(txn)
                self.aborts += 1
                raise ConflictAbort("deadlock detected in lock wait chain")
            node = self._waiting_on.get(node)
        raise WouldBlock(key)

    def _release_locks(self, txn: DBTransaction) -> None:
        for key in self._lock_owners.pop(txn.id, ()):
            if self._locks.get(key) == txn.id:
                del self._locks[key]
        self._waiting_on.pop(txn.id, None)

    def _write_write_conflict(self, txn: DBTransaction) -> bool:
        return any(
            self.store.written_since(key, txn.start_seq)
            for key in txn.write_args
        )

    def _reads_still_current(self, txn: DBTransaction) -> bool:
        return all(
            self.store.latest_version_seq(key) == seq
            for key, seq in txn.read_versions.items()
        )

    def _install_on_latest(self, txn: DBTransaction) -> None:
        """Apply buffered write args atomically on the latest versions."""
        if not txn.write_args:
            return
        seq = self.store.next_seq()
        for key, args in txn.write_args.items():
            value = self.store.read_latest(key)
            for arg in args:
                value = self.model.apply(value, arg)
            self.store.install(key, value, seq)

    def _install_from_snapshot(self, txn: DBTransaction) -> None:
        """TiDB-style blind retry: replay writes over the *snapshot* state,
        silently discarding everything committed since (lost updates)."""
        if not txn.write_args:
            return
        seq = self.store.next_seq()
        for key, args in txn.write_args.items():
            value = self.store.read_at(key, txn.start_seq)
            for arg in args:
                value = self.model.apply(value, arg)
            self.store.install(key, value, seq)
