"""A replicated store with per-site snapshot lag: parallel snapshot isolation.

The paper's introduction motivates checkers with *long fork*: two writes
observed in opposite orders by two readers — legal under parallel snapshot
isolation (PSI), illegal under SI.  This substrate produces genuine long
forks: commits are totally ordered globally (so updates are never lost),
but each commit becomes *visible* at remote sites only ``replication_lag``
sequence numbers later.  A transaction runs at one site and snapshots what
that site can see.

With ``replication_lag = 0`` the behavior collapses to ordinary snapshot
isolation; with lag, two transactions committing at different sites are
each visible locally before remotely, so readers at the two sites can
observe them in opposite orders — the long fork, which Elle detects and
(per the paper's §9 caveat) tags as G2.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.objects import ObjectModel
from ..history.ops import READ, MicroOp
from .mvcc import ConflictAbort, DBTransaction


class ReplicatedTransaction(DBTransaction):
    """A transaction pinned to an origin site."""

    __slots__ = ("site",)

    def __init__(self, txn_id: int, start_seq: int, site: int) -> None:
        super().__init__(txn_id, start_seq)
        self.site = site


class ReplicatedDatabase:
    """Parallel snapshot isolation over ``sites`` asynchronous replicas.

    Interface mirrors :class:`~repro.db.mvcc.MVCCDatabase`: ``begin`` /
    ``execute`` / ``commit`` / ``abort``.  ``begin`` takes the client's
    site.  Commits use first-committer-wins against the *global* order (PSI
    proscribes lost updates); snapshots lag per site.
    """

    def __init__(
        self,
        model: ObjectModel,
        sites: int = 2,
        replication_lag: int = 3,
    ) -> None:
        if sites < 1:
            raise ValueError(f"need at least one site, got {sites}")
        if replication_lag < 0:
            raise ValueError(f"lag must be non-negative, got {replication_lag}")
        self.model = model
        self.sites = sites
        self.replication_lag = replication_lag
        # key -> list of (commit_seq, origin_site, value), seq-ascending.
        self._versions: Dict[Any, List[Tuple[int, int, Any]]] = {}
        self._seq = 0
        self._next_txn_id = 0
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    # Lifecycle

    def begin(self, site: int = 0) -> ReplicatedTransaction:
        if not 0 <= site < self.sites:
            raise ValueError(f"site {site} out of range [0, {self.sites})")
        txn = ReplicatedTransaction(self._next_txn_id, self._seq, site)
        self._next_txn_id += 1
        return txn

    def execute(self, txn: ReplicatedTransaction, mop: MicroOp) -> MicroOp:
        if txn.finished:
            raise ValueError(f"transaction {txn.id} already finished")
        if mop.fn == READ:
            value = self._visible(txn.site, txn.start_seq, mop.key)
            for arg in txn.write_args.get(mop.key, ()):
                value = self.model.apply(value, arg)
            return MicroOp(READ, mop.key, value)
        txn.write_args.setdefault(mop.key, []).append(mop.value)
        return mop

    def commit(self, txn: ReplicatedTransaction) -> Optional[int]:
        if txn.finished:
            raise ValueError(f"transaction {txn.id} already finished")
        txn.finished = True
        # Walter-style conflict rule: writing a key with any version the
        # transaction's snapshot has not seen — committed later, or still
        # in flight from a remote site — aborts.  PSI forbids lost updates,
        # and a write over an unseen version would be exactly that.
        for key in txn.write_args:
            versions = self._versions.get(key)
            if not versions:
                continue
            latest_seq = versions[-1][0]
            seen = any(
                commit_seq == latest_seq
                and self._effective_seq(commit_seq, origin, txn.site)
                <= txn.start_seq
                for commit_seq, origin, _value in versions
            )
            if not seen:
                self.aborts += 1
                raise ConflictAbort(
                    "parallel snapshot isolation: write over an unseen version"
                )
        if not txn.write_args:
            self.commits += 1
            return self._seq
        self._seq += 1
        for key, args in txn.write_args.items():
            value = self._latest_global(key)
            for arg in args:
                value = self.model.apply(value, arg)
            self._versions.setdefault(key, []).append(
                (self._seq, txn.site, value)
            )
        self.commits += 1
        return self._seq

    def abort(self, txn: ReplicatedTransaction) -> None:
        if not txn.finished:
            txn.finished = True
            self.aborts += 1

    # ------------------------------------------------------------------
    # Visibility

    def _effective_seq(self, commit_seq: int, origin: int, site: int) -> int:
        """When a commit becomes visible at ``site``."""
        if origin == site:
            return commit_seq
        return commit_seq + self.replication_lag

    def _visible(self, site: int, at_seq: int, key: Any) -> Any:
        """The newest version of ``key`` visible at ``site`` by ``at_seq``."""
        best_seq = -1
        best = self.model.initial
        for commit_seq, origin, value in self._versions.get(key, ()):
            if self._effective_seq(commit_seq, origin, site) <= at_seq:
                if commit_seq > best_seq:
                    best_seq = commit_seq
                    best = value
        return best

    def _latest_global(self, key: Any) -> Any:
        versions = self._versions.get(key)
        if not versions:
            return self.model.initial
        return versions[-1][2]
