"""A multiversion key-value store.

Every committed write produces a new immutable version stamped with a
monotonically increasing commit sequence number.  Snapshot reads ask for the
latest version at or below a sequence number; that is all MVCC isolation
levels need from storage.

Versions are whole object states (tuples for lists, frozensets for sets,
plain values for registers/counters) so reads are O(log versions) and no
reconstruction is needed.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List

from ..core.objects import ObjectModel


class VersionedStore:
    """Per-key version chains with commit-sequence snapshots."""

    __slots__ = ("_model", "_seqs", "_values", "_seq")

    def __init__(self, model: ObjectModel) -> None:
        self._model = model
        self._seqs: Dict[Any, List[int]] = {}
        self._values: Dict[Any, List[Any]] = {}
        self._seq = 0

    @property
    def model(self) -> ObjectModel:
        return self._model

    @property
    def current_seq(self) -> int:
        """The sequence number of the most recent commit."""
        return self._seq

    def next_seq(self) -> int:
        """Allocate the next commit sequence number."""
        self._seq += 1
        return self._seq

    def read_latest(self, key: Any) -> Any:
        """The most recently committed value of ``key`` (or the initial)."""
        values = self._values.get(key)
        if not values:
            return self._model.initial
        return values[-1]

    def read_at(self, key: Any, seq: int) -> Any:
        """The committed value of ``key`` as of sequence number ``seq``."""
        seqs = self._seqs.get(key)
        if not seqs:
            return self._model.initial
        i = bisect_right(seqs, seq)
        if i == 0:
            return self._model.initial
        return self._values[key][i - 1]

    def version_seq(self, key: Any, seq: int) -> int:
        """The commit seq of the version visible at ``seq`` (0 = initial)."""
        seqs = self._seqs.get(key)
        if not seqs:
            return 0
        i = bisect_right(seqs, seq)
        return seqs[i - 1] if i else 0

    def latest_version_seq(self, key: Any) -> int:
        """The commit seq of ``key``'s newest version (0 = never written)."""
        seqs = self._seqs.get(key)
        return seqs[-1] if seqs else 0

    def install(self, key: Any, value: Any, seq: int) -> None:
        """Install ``value`` as ``key``'s version at commit seq ``seq``."""
        seqs = self._seqs.setdefault(key, [])
        if seqs and seq <= seqs[-1]:
            raise ValueError(
                f"commit seq {seq} for key {key!r} not after {seqs[-1]}"
            )
        seqs.append(seq)
        self._values.setdefault(key, []).append(value)

    def written_since(self, key: Any, seq: int) -> bool:
        """Whether any version of ``key`` committed after ``seq``."""
        return self.latest_version_seq(key) > seq

    def keys(self):
        return self._seqs.keys()
