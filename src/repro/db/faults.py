"""Fault injectors reproducing the paper's four case studies (§7.1–7.4).

Each injector models the *published root cause* of a real bug, so the
observations it produces carry the same anomaly signature Elle found in the
wild.  The table of what-maps-to-what lives in DESIGN.md.

All randomness flows through an injected ``random.Random`` so runs are
reproducible from a seed.
"""

from __future__ import annotations

import random
from typing import Any

from .mvcc import DBTransaction, FaultInjector, MVCCDatabase


class TiDBRetry(FaultInjector):
    """§7.1 — TiDB 2.1.7–3.0.0-beta.1's automatic transaction retry.

    When one transaction conflicted with another, TiDB "simply re-applied
    the transaction's writes again, ignoring the conflict".  Usually the
    replay landed on the then-current state (the documented retry): the
    transaction's stale snapshot reads survive while its writes follow the
    conflicting commit — read skew, G-single.  A second, undocumented
    mechanism could clobber concurrent commits outright — lost updates,
    observed by Elle as inconsistent reads (``incompatible-order``).

    ``blind_probability`` is the chance a retry takes the clobbering path.
    """

    def __init__(
        self,
        rng: random.Random,
        probability: float = 1.0,
        blind_probability: float = 0.25,
    ) -> None:
        self.rng = rng
        self.probability = probability
        self.blind_probability = blind_probability

    def on_conflict(self, txn: DBTransaction, db: MVCCDatabase) -> str:
        if self.rng.random() >= self.probability:
            return "abort"
        if self.rng.random() < self.blind_probability:
            return "retry-blind"
        return "retry-latest"


class YugaByteStaleRead(FaultInjector):
    """§7.2 — YugaByte DB 1.3.1's post-leader-election read timestamps.

    After a master failover, tablet servers attached stale read timestamps
    to RPCs, which serializable transactions wrongly honoured: transactions
    read "from inappropriate logical times" while commit-time validation
    was effectively skipped.  Modeled as assigning a stale snapshot to a
    fraction of transactions and skipping their read validation.

    Expected signature: G2-item cycles with multiple anti-dependency edges
    (two transactions mutually failing to observe each other's appends),
    and no G0/G1 — matching the paper's report.
    """

    def __init__(
        self,
        rng: random.Random,
        probability: float = 0.1,
        staleness: int = 5,
    ) -> None:
        self.rng = rng
        self.probability = probability
        self.staleness = staleness

    def on_begin(self, txn: DBTransaction, db: MVCCDatabase) -> None:
        if self.rng.random() < self.probability:
            txn.start_seq = max(0, txn.start_seq - self.staleness)
            txn.skip_validation = True


class FaunaInternal(FaultInjector):
    """§7.3 — FaunaDB 2.6.0's index reads missing tentative writes.

    Coordinators failed to apply a transaction's own tentative writes to
    its view of an index, so a transaction could append 6 to key 0 and then
    read ``nil``.  Modeled as an index view that misses tentative writes: a
    fraction of reads return the raw underlying version without the
    transaction's own buffered writes, optionally from a slightly stale
    snapshot (``staleness`` commits back).

    Expected signature: ``internal`` anomalies dominating, with G2 cycles
    inferred from the stale index views — as the paper describes for
    fault-free, low-contention clusters.
    """

    def __init__(
        self,
        rng: random.Random,
        probability: float = 0.2,
        staleness: int = 0,
    ) -> None:
        self.rng = rng
        self.probability = probability
        self.staleness = staleness

    def on_read(
        self,
        txn: DBTransaction,
        key: Any,
        value: Any,
        raw: Any,
        db: MVCCDatabase,
    ) -> Any:
        if txn.write_args.get(key) and self.rng.random() < self.probability:
            return raw
        if self.staleness and self.rng.random() < self.probability:
            stale_seq = max(0, txn.start_seq - self.staleness)
            return db.store.read_at(key, stale_seq)
        return value


class DgraphShardMigration(FaultInjector):
    """§7.4 — Dgraph 1.1.1 reading from freshly migrated, empty shards.

    Transactions could read from shards that had just migrated and held no
    data yet, returning ``nil`` for keys that were written long before —
    breaking per-key linearizability and even read-your-writes.  Modeled as
    returning the initial version for a fraction of reads.

    Expected signature: ``internal`` anomalies (reads missing own writes),
    ``cyclic-versions`` once real-time version inference is enabled, and
    read-skew (G-single) cycles over registers.
    """

    def __init__(self, rng: random.Random, probability: float = 0.1) -> None:
        self.rng = rng
        self.probability = probability

    def on_read(
        self,
        txn: DBTransaction,
        key: Any,
        value: Any,
        raw: Any,
        db: MVCCDatabase,
    ) -> Any:
        if self.rng.random() < self.probability:
            return db.model.initial
        return value


class Windowed(FaultInjector):
    """Activate another injector only during periodic fault windows.

    Real Jepsen tests inject faults in bursts — partition, heal, repeat —
    and bugs like YugaByte's fired only during master failovers.  This
    wrapper gates an inner injector on the database's commit count:
    within each ``period`` commits, the fault is live for the first
    ``duty * period`` of them.

    Stateless hooks delegate only while a window is open, so anomalies
    cluster in time just as they do in real fault-injection runs.
    """

    def __init__(
        self,
        inner: FaultInjector,
        period: int = 200,
        duty: float = 0.25,
    ) -> None:
        if period < 1:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 <= duty <= 1.0:
            raise ValueError(f"duty must be in [0, 1], got {duty}")
        self.inner = inner
        self.period = period
        self.duty = duty

    def active(self, db: MVCCDatabase) -> bool:
        return (db.commits % self.period) < self.duty * self.period

    def on_begin(self, txn: DBTransaction, db: MVCCDatabase) -> None:
        if self.active(db):
            self.inner.on_begin(txn, db)

    def on_read(
        self,
        txn: DBTransaction,
        key: Any,
        value: Any,
        raw: Any,
        db: MVCCDatabase,
    ) -> Any:
        if self.active(db):
            return self.inner.on_read(txn, key, value, raw, db)
        return value

    def on_conflict(self, txn: DBTransaction, db: MVCCDatabase) -> str:
        if self.active(db):
            return self.inner.on_conflict(txn, db)
        return "abort"


#: Injector registry for CLI-ish configuration.
INJECTORS = {
    "tidb-retry": TiDBRetry,
    "yugabyte-stale-read": YugaByteStaleRead,
    "fauna-internal": FaunaInternal,
    "dgraph-shard-migration": DgraphShardMigration,
}
