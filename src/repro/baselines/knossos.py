"""A Knossos-style serializability checker: the paper's baseline (§7.5).

Knossos [Kingsbury 2013] checks linearizability by searching for an order
of operations consistent with both observed results and real-time bounds —
the Wing & Gong / Lowe tree search.  Since strict serializability is
linearizability over a transactional map, the same search decides whether a
transactional history is (strictly) serializable.

The search is NP-complete: with ``c`` mutually concurrent transactions the
branching factor is ``c`` and the worst case explores ``c!`` interleavings.
Figure 4 of the paper is exactly this blow-up, measured against Elle's
linear-time inference; this module reproduces the Knossos side.

Algorithm: walk the history's invoke/complete events in order, maintaining
the set of *pending* (invoked, not yet applied) transactions and the current
database state.  At each node either advance the event pointer — forbidden
past the completion of an unapplied ``ok`` transaction — or apply any
pending transaction whose reads match the state.  Aborted transactions
never apply; indeterminate ones may apply at any point or never.  Visited
``(event index, pending set, state)`` triples are memoized.  Reaching the
final event is a witness; exhausting the space is a refutation.

With ``real_time=False`` the event sequence collapses (every transaction
becomes mutually concurrent), deciding plain serializability — also the
brute-force oracle used by the property-based soundness tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.objects import model_for
from ..history import History, Transaction
from ..history.ops import READ


@dataclass
class SearchResult:
    """Outcome of one search.

    ``valid`` is True (witness found), False (space exhausted: no
    serialization exists), or None (timed out / state cap hit — unknown,
    matching the paper's capped Knossos runs).
    """

    valid: Optional[bool]
    linearization: Optional[List[int]] = None
    states_explored: int = 0
    elapsed_s: float = 0.0
    timed_out: bool = False


def _apply_txn(
    state: Dict, txn: Transaction, nil_reads: bool = False
) -> Optional[Dict]:
    """Execute ``txn`` against ``state``; None if a read contradicts it.

    State maps key -> version; micro-op semantics come from the object
    models, so one searcher covers every workload.  ``nil_reads`` gives
    register semantics to ``None`` read results on committed transactions:
    a read of nil asserts the key was never written.  (For indeterminate
    transactions a ``None`` read value means *unknown* and constrains
    nothing, in any workload.)
    """
    new_state = None  # copy-on-write
    current = state
    for mop in txn.mops:
        if mop.fn == READ:
            expected = current.get(mop.key)
            observed = mop.value
            if observed is None:
                if nil_reads and txn.committed:
                    if expected is not None:
                        return None
                continue  # unknown result constrains nothing
            if isinstance(observed, (list, tuple)):
                observed = tuple(observed)
                if expected is None:
                    expected = ()
            elif isinstance(observed, (set, frozenset)):
                observed = frozenset(observed)
                if expected is None:
                    expected = frozenset()
            if observed != expected:
                return None
        else:
            model = model_for(mop.fn)
            if new_state is None:
                new_state = dict(state)
                current = new_state
            base = current.get(mop.key)
            if base is None:
                base = model.initial
            current[mop.key] = model.apply(base, mop.value)
    return new_state if new_state is not None else state


def _events(history: History, real_time: bool) -> List[Tuple[str, Transaction]]:
    """The event list driving the search.

    Real-time mode interleaves invocations and completions as observed.
    Otherwise all invocations precede all completions: every transaction is
    treated as concurrent with every other (plain serializability).
    """
    txns = [t for t in history.transactions if not t.aborted]
    if real_time:
        events: List[Tuple[int, str, Transaction]] = []
        for t in txns:
            events.append((t.invoke_index, "invoke", t))
            if t.complete_index is not None:
                events.append((t.complete_index, "complete", t))
        events.sort(key=lambda e: e[0])
        return [(kind, t) for _i, kind, t in events]
    invokes = [("invoke", t) for t in txns]
    completes = [("complete", t) for t in txns if t.complete_index is not None]
    return invokes + completes


def _state_key(state: Dict) -> FrozenSet:
    return frozenset(state.items())


def check_history(
    history: History,
    real_time: bool = True,
    timeout_s: Optional[float] = 10.0,
    max_states: Optional[int] = None,
) -> SearchResult:
    """Search for a (strictly, if ``real_time``) serializable execution."""
    events = _events(history, real_time)
    start = time.perf_counter()
    if not events:
        return SearchResult(valid=True, linearization=[])

    # Register workloads encode "read nil" as None on committed reads.
    from ..history.ops import WRITE

    nil_reads = any(
        m.fn == WRITE for t in history.transactions for m in t.mops
    )

    # Node: (event_index, pending frozenset of txn ids, state dict).
    # Frames carry an explicit move iterator so the DFS needs no recursion;
    # ``applied`` tracks the transaction order along the current path.
    txn_by_id = {t.id: t for t in history.transactions}
    initial: Tuple[int, FrozenSet[int], Dict] = (0, frozenset(), {})
    visited = {(0, frozenset(), frozenset())}
    explored = 0
    applied: List[int] = []
    ADVANCE = "advance"

    def moves(node):
        event_i, pending, state = node
        if event_i < len(events):
            kind, txn = events[event_i]
            if kind == "invoke":
                yield (ADVANCE, (event_i + 1, pending | {txn.id}, state))
            elif txn.id not in pending:
                yield (ADVANCE, (event_i + 1, pending, state))
            elif txn.indeterminate:
                # Unknown outcome: its effect may land later, or never.
                yield (ADVANCE, (event_i + 1, pending, state))
            # else: completion of an unapplied ok txn - cannot advance.
        for txn_id in sorted(pending):
            txn = txn_by_id[txn_id]
            new_state = _apply_txn(state, txn, nil_reads)
            if new_state is not None:
                yield (txn_id, (event_i, pending - {txn_id}, new_state))

    stack = [(moves(initial), None)]  # (move iterator, label that got us here)
    while stack:
        explored += 1
        capped = (max_states is not None and explored > max_states) or (
            explored % 512 == 0
            and timeout_s is not None
            and time.perf_counter() - start > timeout_s
        )
        if capped:
            return SearchResult(
                valid=None,
                states_explored=explored,
                elapsed_s=time.perf_counter() - start,
                timed_out=True,
            )

        move_iter, _label = stack[-1]
        step = next(move_iter, None)
        if step is None:
            _iter, label = stack.pop()
            if isinstance(label, int):
                applied.pop()
            continue
        label, child = step
        event_i, pending, state = child
        if isinstance(label, int):
            applied.append(label)
        if event_i == len(events):
            return SearchResult(
                valid=True,
                linearization=list(applied),
                states_explored=explored,
                elapsed_s=time.perf_counter() - start,
            )
        key = (event_i, pending, _state_key(state))
        if key in visited:
            if isinstance(label, int):
                applied.pop()
            continue
        visited.add(key)
        stack.append((moves(child), label))

    return SearchResult(
        valid=False,
        states_explored=explored,
        elapsed_s=time.perf_counter() - start,
    )


def check_serializable(
    history: History,
    timeout_s: Optional[float] = 10.0,
    max_states: Optional[int] = None,
) -> SearchResult:
    """Plain serializability (no real-time constraints)."""
    return check_history(
        history, real_time=False, timeout_s=timeout_s, max_states=max_states
    )


def check_strict_serializable(
    history: History,
    timeout_s: Optional[float] = 10.0,
    max_states: Optional[int] = None,
) -> SearchResult:
    """Strict serializability (real-time constrained), Knossos-style."""
    return check_history(
        history, real_time=True, timeout_s=timeout_s, max_states=max_states
    )
