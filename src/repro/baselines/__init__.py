"""Baseline checkers: the NP-complete searches Elle is measured against."""

from .knossos import (
    SearchResult,
    check_history,
    check_serializable,
    check_strict_serializable,
)

__all__ = [
    "SearchResult",
    "check_history",
    "check_serializable",
    "check_strict_serializable",
]
