"""The checker-service wire protocol: newline-delimited JSON frames.

One frame per line, UTF-8, ``\\n``-terminated — the same framing the
JSON-lines history files use, lifted onto a socket.  Every request frame
is a JSON object with a ``type``; the server answers each request with
exactly one reply frame, in order, so a client can drive the protocol in
lockstep over any reliable byte stream (TCP or a unix socket).

Request frames (client to server):

``open``
    ``{"type": "open", "workload": ..., "model": ..., "chunk": N,
    "options": {...}}`` — create a checking session.  ``session`` may name
    the session explicitly; otherwise the server assigns one.  ``chunk``
    bounds the analysis slice (operations per incremental re-check);
    ``options`` passes workload extras (e.g. rw-register ``sources``).
    ``"resume": true`` makes the open idempotent: it attaches to a live
    session of that id, restores one from the daemon's durability
    directory (``--data-dir``) after a crash or eviction, or creates it
    fresh — and the reply's ``applied_seq`` says which appends the daemon
    has already durably applied, so a reconnecting client re-sends only
    the unacked tail.  ``"fresh": true`` discards on-disk state under the
    id first.  Reply: ``opened`` (with ``applied_seq``, plus
    ``resumed``/``ops_ingested`` when state was restored).

``append``
    ``{"type": "append", "session": ..., "seq": N, "ops": [...]}`` —
    buffer a batch of operations.  Each element is exactly the record
    :func:`repro.history.io.encode_op` writes to JSON-lines files, so a
    history file *is* a sequence of valid ``ops`` entries.  ``seq``
    (optional, client-assigned, strictly increasing per session) makes
    re-delivery after a reconnect safe: a batch at or below the session's
    ``applied_seq`` is acknowledged again without being re-applied, and
    half-applied batches dedupe op-by-op on the strictly increasing
    history index.  On a durable daemon the batch is journaled to the
    write-ahead log *before* the ack.  Reply: ``appended`` (with the
    post-accept backlog, ``seq``, ``applied_seq``, and ``deduped`` when
    duplicates were dropped) — sent only once the session's buffer is
    below its high-watermark, which is how backpressure propagates to a
    lockstep client.

``verdict``
    ``{"type": "verdict", "session": ..., "report": false}`` — drain the
    session's backlog through the incremental checker and return the
    verdict for the full prefix ingested so far (see
    :func:`update_record` for the reply shape; ``"report": true`` adds
    the rendered human-readable report).

``stats``
    ``{"type": "stats"}`` or ``{"type": "stats", "session": ...}`` —
    server-wide or per-session counters, including the governance
    numbers (``resident_ops``, ``retired_ops``, ``est_bytes``,
    ``shed_opens``, ``quota_trips``, scheduler ``deficit``), the
    daemon's ``uptime_seconds``/``started_at``, and each session's
    ``last_chunk_ms`` p50/p95/p99 digest.

``metrics``
    ``{"type": "metrics"}`` — the daemon's whole metrics registry as a
    JSON snapshot (the wire twin of the ``/metrics`` Prometheus scrape):
    every family with its type, help text, and labelled samples;
    histograms carry cumulative buckets keyed by upper bound.  On a
    daemon running without ``--metrics-port``/``--log-json`` the reply
    is ``{"type": "metrics", "enabled": false}``.

``ping``
    ``{"type": "ping"}`` — health check.  Reply: ``pong`` with
    ``draining``, ``sessions``, ``backlog``, ``est_bytes``, and
    ``overloaded`` — cheap enough for a tight probe loop, and answered
    even while the server drains (a health checker must distinguish
    "draining" from "dead").

``close``
    ``{"type": "close", "session": ...}`` — drain, then discard the
    session; the reply carries its final counters.

``open`` additionally accepts per-session governance fields: ``max_ops``
(total-ops quota), ``max_analyze_seconds`` (checker-time quota), and
``retire_idle_txns`` (auto-retire the settled prefix after each slice,
sparing the newest N transactions — for keyspace-rotating streams; see
``StreamingChecker.retire``).

Any failure produces ``{"type": "error", "code": "...", "error": "...",
"session": ...}`` instead of the normal reply; the connection stays
usable.  ``code`` is stable and machine-readable: ``bad-frame`` (not a
JSON object, unknown type, malformed fields), ``frame-too-large`` (a line
over the server's byte limit — rejected and skipped without poisoning the
session), ``unknown-session``, ``duplicate-session``, ``server-full``,
``overloaded`` (resident memory over the watermark; the reply carries
``retry_after`` seconds — new sessions are shed, existing ones keep
working), ``quota`` (a per-session ops or analyze-time quota refused the
batch; the session and its verdicts stay intact), ``retired-key`` (an
operation recurred on a retired key; that session is poisoned),
``poisoned``, ``draining``, ``bad-request``, ``internal``; the client
additionally raises ``unavailable`` locally when the daemon cannot be
reached at all.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Union

from ..core.incremental import StreamUpdate
from ..errors import HistoryError, ProtocolError
from ..history.io import decode_op, encode_op
from ..history.ops import Op

#: Byte limit for one frame on the wire (and the asyncio reader limit).
#: Generous: an ``append`` of 10k operations is ~1 MB of JSON.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Request frame types the server understands.
REQUEST_TYPES = frozenset(
    {"open", "append", "verdict", "stats", "metrics", "close", "ping"}
)


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """One frame as wire bytes: compact JSON plus the line terminator."""
    return json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one received line into a frame dict.

    Raises :class:`~repro.errors.ProtocolError` for anything that is not
    a single JSON object — the caller decides whether that poisons the
    connection (server: no, it answers with an ``error`` frame).
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not UTF-8: {exc}") from None
    text = line.strip()
    if not text:
        raise ProtocolError("empty frame")
    try:
        frame = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


def request_type(frame: Dict[str, Any]) -> str:
    """Validate and return the frame's request type."""
    kind = frame.get("type")
    if kind not in REQUEST_TYPES:
        raise ProtocolError(
            f"unknown frame type {kind!r}; expected one of "
            f"{sorted(REQUEST_TYPES)}"
        )
    return kind


def encode_ops(ops: Iterable[Op]) -> List[dict]:
    """Operations as ``append``-frame records (the JSON-lines op shape)."""
    return [encode_op(op) for op in ops]


def decode_ops(records: Sequence[Any]) -> List[Op]:
    """Invert :func:`encode_ops`; positions contextualize decode errors.

    Decoding happens *before* any operation reaches a session, so a
    malformed record rejects the whole frame and leaves the session
    untouched — only structurally broken *histories* (pairing violations
    and the like, found at ingest) poison a session.
    """
    if not isinstance(records, (list, tuple)):
        raise ProtocolError(
            f"append ops must be an array, got {type(records).__name__}"
        )
    ops = []
    for position, record in enumerate(records):
        try:
            ops.append(decode_op(record, position + 1))
        except HistoryError as exc:
            # decode_op speaks in file lines; a frame is one line, so
            # point at the array position instead.
            message = str(exc)
            prefix = f"line {position + 1}: "
            if message.startswith(prefix):
                message = message[len(prefix):]
            raise HistoryError(f"ops[{position}]: {message}") from None
    return ops


def update_record(update: StreamUpdate) -> Dict[str, Any]:
    """The verdict-reply record for one :class:`StreamUpdate`.

    This is the service's ``verdict`` reply body and, identically, the
    per-chunk line ``python -m repro --follow --json`` prints — one shape
    for both, so a log of ``--json`` lines replays as a transcript of
    service verdicts.
    """
    result = update.result
    return {
        "type": "verdict",
        "chunk": update.chunk,
        "ops": update.ops,
        "txns": update.txns,
        "valid": result.valid,
        "model": result.consistency_model,
        "anomalies": len(result.anomalies),
        "anomaly_types": list(result.anomaly_types),
        "new_anomalies": [
            {"name": a.name, "txns": list(a.txns)}
            for a in update.new_anomalies
        ],
        "resolved": update.resolved,
        "reanalyzed_keys": update.reanalyzed_keys,
        "reused_keys": update.reused_keys,
        "not": sorted(result.not_),
        "but_possibly": sorted(result.but_possibly),
    }


def record_summary(record: Dict[str, Any]) -> str:
    """A one-line human digest of a verdict record.

    Mirrors :meth:`StreamUpdate.summary` but works from the wire record,
    so ``--connect --follow`` can narrate a remote session without
    shipping the full verdict objects.
    """
    verdict = "VALID" if record["valid"] else "INVALID"
    parts = [
        f"chunk {record['chunk']}: +{record['ops']} ops "
        f"({record['txns']} txns)",
        f"{verdict} under {record['model']}",
    ]
    fresh = record["new_anomalies"]
    if fresh:
        counts: Dict[str, int] = {}
        for entry in fresh:
            counts[entry["name"]] = counts.get(entry["name"], 0) + 1
        named = ", ".join(f"{name} x{n}" for name, n in sorted(counts.items()))
        parts.append(f"+{len(fresh)} anomalies ({named})")
    else:
        parts.append("+0 anomalies")
    if record["resolved"]:
        parts.append(f"{record['resolved']} resolved")
    return "; ".join(parts)
