"""Durable sessions: a per-session write-ahead log plus checkpoints.

PR 5's daemon kept every session in memory; any crash threw away weeks of
accumulated checker state.  This module is the durability layer that makes
``repro serve`` crash-safe: each session owns a directory under the
daemon's ``--data-dir`` holding

``meta.json``
    The session's :class:`~repro.service.session.SessionConfig`, written
    atomically at open time.  A session directory without a readable meta
    file is ignored by recovery (the crash landed between ``mkdir`` and
    the meta write — nothing was acked yet).

``wal.jsonl``
    The write-ahead op journal: one JSON line per acked ``append`` batch,
    ``{"seq": N, "ops": [...]}``, where the ops are exactly the records
    :func:`repro.history.io.encode_op` writes to history files.  The line
    is written (and, per the fsync policy, synced) *before* the batch is
    buffered or acked, so an acked op is always on disk.  Because a batch
    is one line, a torn tail (the writer died mid-record) loses at most
    one *unacked* batch — dropped on replay by the same
    ``allow_torn_tail`` reader history files use.

``checkpoint-*.ckpt``
    Periodic serialized snapshots of the whole
    :class:`~repro.core.incremental.StreamingChecker` (history prefix,
    index columns, cached per-key batches) plus the session's counters.
    Written to a temp file, fsynced, checksummed, and atomically renamed;
    the newest two are kept.  Restart cost is therefore O(WAL tail since
    the last checkpoint), not O(history).

Recovery (:meth:`SessionStore.recover`) is defensive at every step: a
checkpoint whose magic, checksum, or unpickling fails falls back to the
next older one, then to a full WAL replay from an empty checker; a torn
WAL tail is dropped; ops the checkpoint already incorporated are skipped
by their (strictly increasing) history index.  The recovered session's
verdict stream is pinned byte-identical to an uninterrupted batch check
by ``tests/service/test_crash_recovery.py``.

Fsync policy trade-offs (``--fsync``):

``always``
    fsync after every WAL append, before the ack.  An acked op survives
    power loss.  Slowest.
``batch`` (default)
    WAL appends are flushed to the OS (surviving process crashes —
    ``kill -9`` included) and fsynced opportunistically, at every
    checkpoint and on close/evict/drain.  An acked op can be lost only
    if the whole machine dies inside the sync window.
``never``
    No fsyncs at all (tests, benchmark floors).  Still crash-safe
    against process death, like ``batch``.
"""

from __future__ import annotations

import copy
import hashlib
import io
import json
import os
import pickle
import re
import tempfile
from time import perf_counter
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import ServiceError
from ..history.io import decode_op, encode_op, iter_json_lines
from ..history.ops import Op
from ..obs import Observability

#: Recognized ``--fsync`` policies.
FSYNC_POLICIES = ("always", "batch", "never")

#: A WAL fsync slower than this is an I/O stall worth an event line —
#: on healthy local disks a journal fsync is single-digit milliseconds.
FSYNC_STALL_SECONDS = 0.1

#: Checkpoint file magic: bumped if the payload layout ever changes, so a
#: daemon never misreads a checkpoint from an incompatible build.
CHECKPOINT_MAGIC = b"REPROCKPT1\n"

_SAFE_SESSION = re.compile(r"[^A-Za-z0-9._-]")

_CHECKPOINT_NAME = re.compile(r"^checkpoint-(\d{12})\.ckpt$")


def _fsync_dir(path: str) -> None:
    """fsync a directory so renames/creates inside it are durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write_bytes(path: str, data: bytes, fsync: bool) -> None:
    """Write a file so readers see either the old content or all of the
    new — never a prefix (temp file + fsync + rename)."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if fsync:
            _fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def session_dir_name(session_id: str) -> str:
    """A filesystem-safe directory name for a session id.

    Unsafe characters are percent-escaped and a short digest disambiguates
    collisions, so two distinct ids can never share a directory.
    """
    safe = _SAFE_SESSION.sub(
        lambda m: f"%{ord(m.group(0)):02x}", session_id
    )
    if safe == session_id:
        return safe
    digest = hashlib.sha256(session_id.encode("utf-8")).hexdigest()[:8]
    return f"{safe}-{digest}"


class SessionStore:
    """One session's durable state: its directory, WAL handle, checkpoints."""

    def __init__(
        self,
        root: str,
        session_id: str,
        fsync: str = "batch",
        keep_checkpoints: int = 2,
        obs: Optional[Observability] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ServiceError(
                f"unknown fsync policy {fsync!r}; "
                f"expected one of {list(FSYNC_POLICIES)}"
            )
        self.session_id = session_id
        self.fsync = fsync
        self.obs = obs
        self.keep_checkpoints = max(1, keep_checkpoints)
        self.path = os.path.join(root, session_dir_name(session_id))
        self.wal_path = os.path.join(self.path, "wal.jsonl")
        self.meta_path = os.path.join(self.path, "meta.json")
        self._wal: Optional[io.BufferedWriter] = None
        self._wal_dirty = False  # bytes written since the last fsync
        self._checkpoint_counter = 0
        self.wal_batches = 0
        self.checkpoints_written = 0

    # ------------------------------------------------------------------
    # Creation / metadata

    def create(self, meta: Mapping[str, Any]) -> None:
        """Create the session directory and write its meta record."""
        os.makedirs(self.path, exist_ok=True)
        _atomic_write_bytes(
            self.meta_path,
            json.dumps(dict(meta), indent=2).encode("utf-8") + b"\n",
            fsync=self.fsync != "never",
        )

    def load_meta(self) -> Optional[Dict[str, Any]]:
        """The meta record, or ``None`` when absent/unreadable (a session
        directory the crash left half-created — recovery skips it)."""
        try:
            with open(self.meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        return meta if isinstance(meta, dict) else None

    @property
    def exists(self) -> bool:
        return os.path.exists(self.meta_path)

    # ------------------------------------------------------------------
    # The write-ahead log

    def log_append(self, seq: int, ops: List[Op]) -> None:
        """Journal one acked batch: write (and per policy sync) before the
        caller buffers or acks it."""
        if self._wal is None:
            self._wal = open(self.wal_path, "ab")
        record = {"seq": seq, "ops": [encode_op(op) for op in ops]}
        line = json.dumps(record, separators=(",", ":")).encode("utf-8")
        self._wal.write(line + b"\n")
        self._wal.flush()  # out of the process: survives kill -9
        self._wal_dirty = True
        self.wal_batches += 1
        obs = self.obs
        if obs is not None and obs.metrics is not None:
            obs.metrics.wal_appends_total.inc()
        if self.fsync == "always":
            self.sync()

    def sync(self) -> None:
        """fsync pending WAL bytes (no-op under ``never`` or when clean)."""
        if self._wal is not None and self._wal_dirty and self.fsync != "never":
            begin = perf_counter()
            os.fsync(self._wal.fileno())
            elapsed = perf_counter() - begin
            obs = self.obs
            if obs is not None:
                if obs.metrics is not None:
                    obs.metrics.wal_fsync_seconds.observe(elapsed)
                if elapsed >= FSYNC_STALL_SECONDS:
                    obs.emit(
                        "wal-fsync-stall",
                        level="warn",
                        session=self.session_id,
                        ms=round(elapsed * 1000.0, 3),
                        threshold_ms=FSYNC_STALL_SECONDS * 1000.0,
                    )
        self._wal_dirty = False

    def replay_wal(self) -> Tuple[int, List[Tuple[int, List[Op]]]]:
        """Read the journal back: ``(highest_seq, [(seq, ops), ...])``.

        Tolerates a torn final line (dropped — it was never acked) via the
        same reader history files use.  Batches are returned in write
        order; sequence numbers are the ack bookkeeping, op indices the
        dedupe key.
        """
        batches: List[Tuple[int, List[Op]]] = []
        highest = 0
        try:
            fh = open(self.wal_path, "r", encoding="utf-8")
        except OSError:
            return 0, []
        with fh:
            for line_number, record in iter_json_lines(
                fh, allow_torn_tail=True
            ):
                if not isinstance(record, dict) or "ops" not in record:
                    raise ServiceError(
                        f"{self.wal_path}:{line_number}: "
                        "malformed WAL record"
                    )
                seq = record.get("seq", 0)
                ops = [
                    decode_op(raw, line_number) for raw in record["ops"]
                ]
                highest = max(highest, int(seq))
                batches.append((int(seq), ops))
        return highest, batches

    # ------------------------------------------------------------------
    # Checkpoints

    def checkpoint_paths(self) -> List[str]:
        """Existing checkpoint files, newest first."""
        try:
            names = os.listdir(self.path)
        except OSError:
            return []
        found = []
        for name in names:
            match = _CHECKPOINT_NAME.match(name)
            if match:
                found.append((int(match.group(1)), name))
        found.sort(reverse=True)
        return [os.path.join(self.path, name) for _n, name in found]

    def write_checkpoint(self, payload: Dict[str, Any]) -> str:
        """Serialize one checkpoint atomically; prune old ones.

        Layout: magic, 8-byte big-endian body length, pickled body,
        SHA-256 of the body.  Any torn or bit-flipped file fails the
        length or digest check on load and recovery falls back.
        """
        existing = self.checkpoint_paths()
        if existing:
            newest = os.path.basename(existing[0])
            self._checkpoint_counter = max(
                self._checkpoint_counter,
                int(_CHECKPOINT_NAME.match(newest).group(1)),
            )
        self._checkpoint_counter += 1
        name = f"checkpoint-{self._checkpoint_counter:012d}.ckpt"
        path = os.path.join(self.path, name)
        body = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
        blob = (
            CHECKPOINT_MAGIC
            + len(body).to_bytes(8, "big")
            + body
            + hashlib.sha256(body).digest()
        )
        # The WAL tail a checkpoint supersedes must not outlive it in the
        # cache while the checkpoint itself is still in flight: sync the
        # journal first, then the checkpoint.
        self.sync()
        begin = perf_counter()
        _atomic_write_bytes(path, blob, fsync=self.fsync != "never")
        elapsed = perf_counter() - begin
        self.checkpoints_written += 1
        obs = self.obs
        if obs is not None:
            if obs.metrics is not None:
                obs.metrics.checkpoints_written_total.inc()
                obs.metrics.checkpoint_seconds.observe(elapsed)
                obs.metrics.checkpoint_bytes.observe(len(blob))
            obs.emit(
                "checkpoint",
                session=self.session_id,
                bytes=len(blob),
                ms=round(elapsed * 1000.0, 3),
            )
        for stale in self.checkpoint_paths()[self.keep_checkpoints:]:
            try:
                os.unlink(stale)
            except OSError:  # pragma: no cover - already gone
                pass
        return path

    def load_checkpoint(self) -> Optional[Dict[str, Any]]:
        """The newest checkpoint that validates, else ``None``.

        Every failure mode — unreadable file, wrong magic, short body,
        checksum mismatch, unpicklable payload — falls back to the next
        older checkpoint; recovery then replays a longer WAL tail.
        """
        for path in self.checkpoint_paths():
            payload = self._read_checkpoint(path)
            if payload is not None:
                return payload
        return None

    @staticmethod
    def _read_checkpoint(path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        if not blob.startswith(CHECKPOINT_MAGIC):
            return None
        offset = len(CHECKPOINT_MAGIC)
        if len(blob) < offset + 8:
            return None
        length = int.from_bytes(blob[offset:offset + 8], "big")
        body = blob[offset + 8:offset + 8 + length]
        digest = blob[offset + 8 + length:offset + 8 + length + 32]
        if len(body) != length or len(digest) != 32:
            return None
        if hashlib.sha256(body).digest() != digest:
            return None
        try:
            payload = pickle.loads(body)
        except Exception:
            return None
        return payload if isinstance(payload, dict) else None

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the WAL handle (state stays on disk)."""
        if self._wal is not None:
            self.sync()
            self._wal.close()
            self._wal = None

    def destroy(self) -> None:
        """Remove the session's durable state (clean ``close`` frames)."""
        self.close()
        try:
            names = os.listdir(self.path)
        except OSError:
            return
        for name in names:
            try:
                os.unlink(os.path.join(self.path, name))
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        try:
            os.rmdir(self.path)
        except OSError:  # pragma: no cover - concurrent cleanup
            pass


class DurabilityManager:
    """The daemon-wide durability policy: data dir, cadence, fsync mode.

    Sans-I/O-adjacent by design: everything here is synchronous file work
    the asyncio shell calls inline (WAL appends are a buffered write +
    optional fsync; checkpoints are the expensive part and happen on the
    analyzer's cadence, bounded by ``checkpoint_every``).
    """

    def __init__(
        self,
        data_dir: str,
        checkpoint_every: int = 20_000,
        fsync: str = "batch",
        keep_checkpoints: int = 2,
        obs: Optional[Observability] = None,
    ) -> None:
        if checkpoint_every <= 0:
            raise ServiceError("checkpoint_every must be positive")
        if fsync not in FSYNC_POLICIES:
            raise ServiceError(
                f"unknown fsync policy {fsync!r}; "
                f"expected one of {list(FSYNC_POLICIES)}"
            )
        self.data_dir = data_dir
        self.checkpoint_every = checkpoint_every
        self.fsync = fsync
        self.keep_checkpoints = keep_checkpoints
        self.obs = obs
        self.sessions_dir = os.path.join(data_dir, "sessions")
        os.makedirs(self.sessions_dir, exist_ok=True)
        self._stores: Dict[str, SessionStore] = {}
        self.checkpoints_written = 0
        self.sessions_recovered = 0

    # ------------------------------------------------------------------

    def store(self, session_id: str) -> SessionStore:
        store = self._stores.get(session_id)
        if store is None:
            store = SessionStore(
                self.sessions_dir,
                session_id,
                fsync=self.fsync,
                keep_checkpoints=self.keep_checkpoints,
                obs=self.obs,
            )
            self._stores[session_id] = store
        return store

    def has_state(self, session_id: str) -> bool:
        """True when the session left durable state behind on disk."""
        return self.store(session_id).exists

    def on_disk(self) -> List[str]:
        """Session ids with durable state (restart-time inventory).

        Reads each directory's ``meta.json`` directly — the directory
        name is the *escaped* id, the meta record holds the real one.
        """
        ids = []
        try:
            names = os.listdir(self.sessions_dir)
        except OSError:
            return []
        for name in names:
            meta_path = os.path.join(self.sessions_dir, name, "meta.json")
            try:
                with open(meta_path, "r", encoding="utf-8") as fh:
                    meta = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(meta, dict) and "session_id" in meta:
                ids.append(meta["session_id"])
        return sorted(ids)

    # ------------------------------------------------------------------
    # Session lifecycle hooks (called by the server / registry)

    def open_session(self, session) -> None:
        """Create durable state for a fresh session (WAL starts empty)."""
        store = self.store(session.id)
        store.create({
            "format": 1,
            "session_id": session.id,
            "config": _encode_config(session.config),
        })

    def log_append(self, session, seq: int, ops: List[Op]) -> None:
        """WAL the batch; must be called before buffering/acking it."""
        self.store(session.id).log_append(seq, ops)

    def maybe_checkpoint(self, session) -> bool:
        """Checkpoint when enough new ops were analyzed since the last."""
        analyzed = session.checker.history.op_count
        if analyzed - session.checkpointed_ops < self.checkpoint_every:
            return False
        self.checkpoint(session)
        return True

    def checkpoint(self, session) -> str:
        """Serialize the session's full checker state now."""
        store = self.store(session.id)
        path = store.write_checkpoint(_session_payload(session))
        session.checkpointed_ops = session.checker.history.op_count
        self.checkpoints_written += 1
        return path

    def recover_session(self, session_id: str, registry):
        """Rebuild one session from disk into ``registry``.

        Newest valid checkpoint first; the WAL tail (ops whose history
        index exceeds what the checkpoint incorporated) lands in the
        backlog for the analyzer to drain, exactly as if the client had
        just appended it.  Returns the live
        :class:`~repro.service.session.Session`.
        """
        store = self.store(session_id)
        meta = store.load_meta()
        if meta is None:
            raise ServiceError(
                f"session {session_id!r} has no recoverable state",
                code="unknown-session",
            )
        config = _decode_config(meta.get("config") or {})
        payload = store.load_checkpoint()
        highest_seq, batches = store.replay_wal()
        session = registry.open(config, session_id)
        try:
            if payload is not None and payload.get("session_id") == session_id:
                _restore_payload(session, payload)
            covered = session.checker.history.max_index
            session.applied_seq = max(session.applied_seq, highest_seq)
            for _seq, ops in batches:
                fresh = [op for op in ops if op.index > covered]
                if not fresh:
                    continue
                covered = fresh[-1].index
                session.pending.extend(fresh)
                session.ops_ingested += len(fresh)
                registry.ops_total += len(fresh)
            session.last_buffered_index = covered
        except BaseException:
            registry.close(session_id)
            raise
        self.sessions_recovered += 1
        obs = self.obs
        if obs is not None:
            if obs.metrics is not None:
                obs.metrics.sessions_recovered_total.inc()
            obs.emit(
                "session-restore",
                session=session_id,
                checkpoint=payload is not None,
                wal_batches=len(batches),
                backlog=session.backlog,
                applied_seq=session.applied_seq,
            )
        return session

    def drop(self, session_id: str, destroy: bool = False) -> None:
        """Forget (and optionally delete) a session's durable state."""
        store = self._stores.pop(session_id, None)
        if store is None:
            store = self.store(session_id)
            self._stores.pop(session_id, None)
        if destroy:
            store.destroy()
        else:
            store.close()

    def close(self) -> None:
        for store in list(self._stores.values()):
            store.close()
        self._stores.clear()

    def stats(self) -> Dict[str, Any]:
        return {
            "data_dir": self.data_dir,
            "fsync": self.fsync,
            "checkpoint_every": self.checkpoint_every,
            "checkpoints_written": self.checkpoints_written,
            "sessions_recovered": self.sessions_recovered,
        }


# ---------------------------------------------------------------------------
# Payload (de)serialization helpers


def _encode_config(config) -> Dict[str, Any]:
    return {
        "workload": config.workload,
        "consistency_model": config.consistency_model,
        "chunk_ops": config.chunk_ops,
        "process_edges": config.process_edges,
        "realtime_edges": config.realtime_edges,
        "timestamp_edges": config.timestamp_edges,
        "options": dict(config.options),
    }


def _decode_config(record: Mapping[str, Any]):
    from .session import SessionConfig

    return SessionConfig(
        workload=record.get("workload", "list-append"),
        consistency_model=record.get("consistency_model", "serializable"),
        chunk_ops=record.get("chunk_ops", 1000),
        process_edges=record.get("process_edges", True),
        realtime_edges=record.get("realtime_edges", True),
        timestamp_edges=record.get("timestamp_edges", False),
        options=record.get("options") or {},
    )


def _session_payload(session) -> Dict[str, Any]:
    """Everything a checkpoint must capture to resume the session.

    The checker is stored with its ``result`` stripped: the first verdict
    after a restore re-derives it from the cached per-key batches (an
    all-keys-reused re-merge — cheap, and byte-identical by the streaming
    equivalence oracle), which keeps checkpoints small and avoids
    serializing the whole dependency graph.
    """
    checker = copy.copy(session.checker)
    checker.result = None
    return {
        "format": 1,
        "session_id": session.id,
        "applied_seq": session.applied_seq,
        "checker": checker,
        "counters": {
            # Analyzed ops only, not the ingestion counter: whatever sat
            # in the backlog at checkpoint time is reconstructed from the
            # WAL tail on recovery and re-counted there.
            "ops_ingested": session.checker.history.op_count,
            "chunks_checked": session.chunks_checked,
            "keys_reanalyzed": session.keys_reanalyzed,
            "keys_reused": session.keys_reused,
            "analyze_seconds": session.analyze_seconds,
            "max_chunk_seconds": session.max_chunk_seconds,
        },
    }


def _restore_payload(session, payload: Dict[str, Any]) -> None:
    session.checker = payload["checker"]
    session.applied_seq = int(payload.get("applied_seq", 0))
    counters = payload.get("counters") or {}
    session.ops_ingested = counters.get("ops_ingested", 0)
    session.chunks_checked = counters.get("chunks_checked", 0)
    session.keys_reanalyzed = counters.get("keys_reanalyzed", 0)
    session.keys_reused = counters.get("keys_reused", 0)
    session.analyze_seconds = counters.get("analyze_seconds", 0.0)
    session.max_chunk_seconds = counters.get("max_chunk_seconds", 0.0)
    session.last_buffered_index = session.checker.history.max_index
    session.checkpointed_ops = session.checker.history.op_count
