"""Checker sessions and their registry: the service's sans-I/O core.

A *session* is one independent checking stream — its own workload, its
own consistency model, its own :class:`~repro.core.incremental.
StreamingChecker` — multiplexed with many others inside a single daemon.
This module holds everything about that multiplexing that is not socket
I/O, so the asyncio server (:mod:`repro.service.server`) stays a thin
shell and the equivalence oracle
(``tests/properties/test_service_equivalence.py``) can drive the exact
scheduling code with hypothesis-chosen interleavings, no sockets needed.

Three design points, all in service of "many sessions, one core":

* **Bounded buffers.**  Appended operations land in a per-session backlog
  deque; a session whose backlog has reached ``max_pending_ops`` stops
  *admitting* appends (:meth:`SessionRegistry.accepts`) until analysis
  drains it.  The server turns that refusal into backpressure by simply
  not replying to the ``append`` frame yet — the lockstep client stalls,
  and eventually so does its TCP window.
* **Bounded slices.**  :meth:`SessionRegistry.run_slice` pops the next
  runnable session in round-robin order and analyzes *one* chunk
  (``chunk_ops`` operations at most) before yielding, so a session
  streaming millions of operations cannot starve a neighbor that needs
  one small verdict.
* **Idle eviction.**  Sessions that have neither received a frame nor had
  work pending for ``idle_timeout`` seconds are evicted, so abandoned
  clients cannot pin checker state (and its per-key caches) forever.

Error semantics mirror the streaming checker's: a structurally broken
chunk poisons the session — its backlog is discarded, the original
exception is replayed to every later ``verdict`` — but never the server.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.consistency import SERIALIZABLE
from ..core.incremental import StreamingChecker, StreamUpdate
from ..errors import ServiceError
from ..history.ops import Op

#: Default operations per analysis slice (and per incremental re-check).
DEFAULT_CHUNK_OPS = 1000


@dataclass(frozen=True)
class SessionConfig:
    """Per-session checking configuration, as carried by ``open`` frames."""

    workload: str = "list-append"
    consistency_model: str = SERIALIZABLE
    chunk_ops: int = DEFAULT_CHUNK_OPS
    process_edges: bool = True
    realtime_edges: bool = True
    timestamp_edges: bool = False
    #: Extra analyzer options (e.g. rw-register ``sources``); values must
    #: be JSON-representable since they ride the ``open`` frame.
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.chunk_ops <= 0:
            raise ServiceError(
                f"chunk_ops must be positive, got {self.chunk_ops}"
            )


class Session:
    """One checking stream: a streaming checker plus its backlog and books."""

    def __init__(
        self,
        session_id: str,
        config: SessionConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.id = session_id
        self.config = config
        self._clock = clock
        # Workload/model validation happens here, so a bad ``open`` frame
        # fails before the registry ever records the session.
        options = dict(config.options)
        sources = options.pop("sources", None)
        if sources is not None:
            options["sources"] = tuple(sources)
        self.checker = StreamingChecker(
            workload=config.workload,
            consistency_model=config.consistency_model,
            process_edges=config.process_edges,
            realtime_edges=config.realtime_edges,
            timestamp_edges=config.timestamp_edges,
            **options,
        )
        self.pending: deque = deque()
        self.ops_ingested = 0
        self.chunks_checked = 0
        self.keys_reanalyzed = 0
        self.keys_reused = 0
        self.analyze_seconds = 0.0
        self.max_chunk_seconds = 0.0
        self.last_update: Optional[StreamUpdate] = None
        self.error: Optional[BaseException] = None
        self.closed = False
        self.last_activity = clock()
        # Durability / resume bookkeeping (see repro.service.durability):
        # the highest acked append sequence number, the highest operation
        # index accepted (analyzed or buffered — the duplicate-delivery
        # dedupe line), and how many ops the newest checkpoint covers.
        self.applied_seq = 0
        self.last_buffered_index = -1
        self.checkpointed_ops = 0
        self.resumed = False

    # ------------------------------------------------------------------

    @property
    def backlog(self) -> int:
        """Operations buffered but not yet analyzed."""
        return len(self.pending)

    @property
    def has_work(self) -> bool:
        """True when the analyzer loop should give this session a slice."""
        return bool(self.pending) and self.error is None and not self.closed

    @property
    def state(self) -> str:
        if self.closed:
            return "closed"
        if self.error is not None:
            return "poisoned"
        return "open"

    def touch(self) -> None:
        self.last_activity = self._clock()

    def buffer(self, ops: Sequence[Op]) -> None:
        """Accept one ``append`` batch into the backlog."""
        if self.closed:
            raise ServiceError(f"session {self.id!r} is closed")
        if self.error is not None:
            raise ServiceError(
                f"session {self.id!r} is poisoned: {self.error}",
                code="poisoned",
            )
        self.pending.extend(ops)
        self.ops_ingested += len(ops)
        if ops:
            self.last_buffered_index = max(
                self.last_buffered_index, ops[-1].index
            )
        self.touch()

    def dedupe_ops(self, ops: Sequence[Op]) -> List[Op]:
        """Drop operations this session has already accepted.

        Operation indices are strictly increasing across a stream
        (:meth:`History.extend` enforces it), so everything at or below
        ``last_buffered_index`` is a duplicate delivery — a reconnecting
        client re-sending a batch the daemon journaled (maybe partially
        acked) before dying.  Idempotent resume falls out: re-sending is
        always safe.
        """
        threshold = self.last_buffered_index
        return [op for op in ops if op.index > threshold]

    def analyze_chunk(self) -> StreamUpdate:
        """Run one bounded slice: up to ``chunk_ops`` backlog operations.

        A failing chunk poisons the session exactly like
        :meth:`StreamingChecker.extend` poisons its stream; the rest of
        the backlog is discarded because the prefix it would extend can
        no longer be trusted.
        """
        if self.error is not None:
            raise self.error
        take = min(len(self.pending), self.config.chunk_ops)
        chunk = [self.pending.popleft() for _ in range(take)]
        begin = self._clock()
        try:
            update = self.checker.extend(chunk)
        except BaseException as exc:
            self.error = exc
            self.pending.clear()
            raise
        finally:
            elapsed = self._clock() - begin
            self.analyze_seconds += elapsed
            self.max_chunk_seconds = max(self.max_chunk_seconds, elapsed)
        self.chunks_checked += 1
        self.keys_reanalyzed += update.reanalyzed_keys
        self.keys_reused += update.reused_keys
        self.last_update = update
        return update

    def verdict(self) -> StreamUpdate:
        """The verdict for everything ingested (backlog must be drained).

        A session that never analyzed a chunk gets the verdict on the
        empty observation, matching ``check_stream([])``.
        """
        if self.error is not None:
            raise ServiceError(
                f"session {self.id!r} is poisoned: {self.error}",
                code="poisoned",
            )
        if self.pending:
            raise ServiceError(
                f"session {self.id!r} still has {len(self.pending)} "
                "unanalyzed operations"
            )
        if self.last_update is None:
            return self.analyze_chunk()
        return self.last_update

    def stats(self) -> Dict[str, Any]:
        """The per-session counters the ``stats`` frame reports."""
        record: Dict[str, Any] = {
            "state": self.state,
            "workload": self.config.workload,
            "model": self.config.consistency_model,
            "chunk_ops": self.config.chunk_ops,
            "ops_ingested": self.ops_ingested,
            "backlog": self.backlog,
            "chunks_checked": self.chunks_checked,
            "keys_reanalyzed": self.keys_reanalyzed,
            "keys_reused": self.keys_reused,
            "analyze_seconds": round(self.analyze_seconds, 4),
            "max_chunk_seconds": round(self.max_chunk_seconds, 4),
            "applied_seq": self.applied_seq,
            "resumed": self.resumed,
        }
        if self.error is not None:
            record["error"] = str(self.error)
        update = self.last_update
        if update is not None:
            record["last_verdict"] = {
                "chunk": update.chunk,
                "txns": update.txns,
                "valid": update.result.valid,
                "anomalies": len(update.result.anomalies),
                "new_anomalies": len(update.new_anomalies),
                "resolved": update.resolved,
            }
        return record


class SessionRegistry:
    """All live sessions, plus admission, scheduling, and eviction policy."""

    def __init__(
        self,
        max_sessions: int = 64,
        max_pending_ops: int = 50_000,
        idle_timeout: float = 300.0,
        default_chunk_ops: int = DEFAULT_CHUNK_OPS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions <= 0:
            raise ServiceError("max_sessions must be positive")
        if max_pending_ops <= 0:
            raise ServiceError("max_pending_ops must be positive")
        self.max_sessions = max_sessions
        self.max_pending_ops = max_pending_ops
        self.idle_timeout = idle_timeout
        self.default_chunk_ops = default_chunk_ops
        self.clock = clock
        self.sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._rotation: deque = deque()  # round-robin order of session ids
        self._auto_id = 0
        #: Called with each session just before idle eviction drops it.
        #: The durability layer hangs its final checkpoint here, so an
        #: evicted session can be restored from disk instead of starting
        #: empty when a client reopens it.
        self.on_evict: Optional[Callable[[Session], None]] = None
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_evicted = 0
        self.ops_total = 0
        self.chunks_total = 0

    # ------------------------------------------------------------------
    # Lifecycle

    def open(
        self,
        config: Optional[SessionConfig] = None,
        session_id: Optional[str] = None,
    ) -> Session:
        if session_id is None:
            self._auto_id += 1
            session_id = f"session-{self._auto_id}"
        if session_id in self.sessions:
            raise ServiceError(
                f"session {session_id!r} already open",
                code="duplicate-session",
            )
        if len(self.sessions) >= self.max_sessions:
            raise ServiceError(
                f"session table full ({self.max_sessions}); close a "
                "session or let idle ones evict",
                code="server-full",
            )
        session = Session(
            session_id, config or SessionConfig(), clock=self.clock
        )
        self.sessions[session_id] = session
        self._rotation.append(session_id)
        self.sessions_opened += 1
        return session

    def get(self, session_id: Any) -> Session:
        session = self.sessions.get(session_id)
        if session is None:
            raise ServiceError(
                f"unknown session {session_id!r} (never opened, closed, "
                "or evicted as idle)",
                code="unknown-session",
            )
        return session

    def close(self, session_id: str) -> Dict[str, Any]:
        """Remove a session; returns its final counters."""
        session = self.get(session_id)
        session.closed = True
        final = session.stats()
        del self.sessions[session_id]
        self._rotation.remove(session_id)
        self.sessions_closed += 1
        return final

    def evict_idle(self, now: Optional[float] = None) -> List[str]:
        """Drop sessions idle past the timeout (only with empty backlogs:
        buffered work is never silently discarded)."""
        now = self.clock() if now is None else now
        victims = [
            session_id
            for session_id, session in self.sessions.items()
            if not session.pending
            and now - session.last_activity >= self.idle_timeout
        ]
        for session_id in victims:
            session = self.sessions[session_id]
            if self.on_evict is not None:
                self.on_evict(session)
            del self.sessions[session_id]
            session.closed = True
            self._rotation.remove(session_id)
            self.sessions_evicted += 1
        return victims

    # ------------------------------------------------------------------
    # Admission and scheduling

    def accepts(self, session: Session) -> bool:
        """High-watermark admission: may this session buffer another batch?

        A batch is admitted while the backlog is *below* the limit, so
        one batch may overshoot it — which keeps arbitrary client batch
        sizes deadlock-free (a batch larger than the whole buffer still
        gets in, one admission at a time).
        """
        return session.backlog < self.max_pending_ops

    def append(self, session_id: str, ops: Sequence[Op]) -> Session:
        """Buffer a decoded batch into a session (the ``append`` frame)."""
        session = self.get(session_id)
        session.buffer(ops)
        self.ops_total += len(ops)
        return session

    def next_runnable(self) -> Optional[Session]:
        """The next session owed an analysis slice, round-robin."""
        for _ in range(len(self._rotation)):
            session_id = self._rotation[0]
            self._rotation.rotate(-1)
            session = self.sessions.get(session_id)
            if session is not None and session.has_work:
                return session
        return None

    def run_slice(
        self,
    ) -> Optional[Tuple[Session, Optional[StreamUpdate], Optional[BaseException]]]:
        """Analyze one bounded chunk of the next runnable session.

        Returns ``None`` when no session has work; otherwise the session
        plus either its fresh update or the exception that poisoned it
        (already recorded on the session — the server keeps running).
        """
        session = self.next_runnable()
        if session is None:
            return None
        self.chunks_total += 1
        try:
            update = session.analyze_chunk()
        except Exception as exc:
            return session, None, exc
        return session, update, None

    def drain(self, session: Session) -> None:
        """Synchronously analyze a session's whole backlog (client-less
        use: tests, in-process embedding).  The server's analyzer loop is
        the asynchronous equivalent, fair across sessions."""
        while session.has_work:
            session.analyze_chunk()

    def has_work(self) -> bool:
        return any(s.has_work for s in self.sessions.values())

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Server-wide counters for the ``stats`` frame."""
        return {
            "sessions_open": len(self.sessions),
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "sessions_evicted": self.sessions_evicted,
            "ops_ingested": self.ops_total,
            "chunks_checked": self.chunks_total,
            "backlog": sum(s.backlog for s in self.sessions.values()),
            "max_sessions": self.max_sessions,
            "max_pending_ops": self.max_pending_ops,
            "idle_timeout": self.idle_timeout,
        }
