"""Checker sessions and their registry: the service's sans-I/O core.

A *session* is one independent checking stream — its own workload, its
own consistency model, its own :class:`~repro.core.incremental.
StreamingChecker` — multiplexed with many others inside a single daemon.
This module holds everything about that multiplexing that is not socket
I/O, so the asyncio server (:mod:`repro.service.server`) stays a thin
shell and the equivalence oracle
(``tests/properties/test_service_equivalence.py``) can drive the exact
scheduling code with hypothesis-chosen interleavings, no sockets needed.

Three design points, all in service of "many sessions, one core":

* **Bounded buffers.**  Appended operations land in a per-session backlog
  deque; a session whose backlog has reached ``max_pending_ops`` stops
  *admitting* appends (:meth:`SessionRegistry.accepts`) until analysis
  drains it.  The server turns that refusal into backpressure by simply
  not replying to the ``append`` frame yet — the lockstep client stalls,
  and eventually so does its TCP window.
* **Bounded slices.**  :meth:`SessionRegistry.run_slice` pops the next
  runnable session in round-robin order and analyzes *one* chunk
  (``chunk_ops`` operations at most) before yielding, so a session
  streaming millions of operations cannot starve a neighbor that needs
  one small verdict.
* **Idle eviction.**  Sessions that have neither received a frame nor had
  work pending for ``idle_timeout`` seconds are evicted, so abandoned
  clients cannot pin checker state (and its per-key caches) forever.

On top of round-robin, the registry runs **deficit scheduling** and a
**memory-watermark degradation ladder** so a hostile mix degrades
gracefully instead of falling over:

* Each analysis slice is charged at its wall-clock cost against the
  session's time *deficit*; every scheduling visit refills the deficit by
  ``quantum_seconds``.  A session whose single chunk costs several quanta
  (an elephant) then sits out proportionally many rotations while its
  cheap neighbors (the mice) keep getting verdicts — fairness in seconds,
  not in slice counts.  The scheduler is work-conserving: when every
  runnable session is in debt, the least indebted one runs anyway.
* Per-session quotas (``max_ops``, ``max_analyze_seconds``) bound what
  one stream may consume; a tripped quota refuses the *batch* with a
  structured ``quota`` error and leaves the session (and its verdicts)
  intact.
* When the estimated resident footprint crosses ``max_resident_bytes``,
  :meth:`SessionRegistry.relieve_pressure` climbs the ladder — retire
  settled prefixes of consenting sessions (``retire_idle_txns > 0``),
  then checkpoint-and-evict the coldest idle sessions (only when an
  ``on_evict`` checkpoint hook is wired, i.e. on durable daemons), and as
  the last rung new ``open`` requests are shed with a structured
  ``overloaded`` error carrying ``retry_after``.

One injectable ``clock`` (``SessionRegistry(clock=...)``) governs *all*
time the registry observes: idle-eviction ages, analyze-seconds quotas,
and scheduler deficits — tests drive every policy deterministically by
faking a single clock.

Error semantics mirror the streaming checker's: a structurally broken
chunk poisons the session — its backlog is discarded, the original
exception is replayed to every later ``verdict`` — but never the server.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.consistency import SERIALIZABLE
from ..core.incremental import StreamingChecker, StreamUpdate
from ..errors import ServiceError
from ..history.ops import Op
from ..obs import Observability, percentiles

#: Default operations per analysis slice (and per incremental re-check).
DEFAULT_CHUNK_OPS = 1000

#: Default scheduler quantum: seconds of analysis credit per visit.
DEFAULT_QUANTUM_SECONDS = 0.25

#: Per-session chunk-latency sample window (for the ``last_chunk_ms``
#: percentile digest in ``stats`` frames).  Always on: a deque of a few
#: hundred floats costs nothing next to a chunk analysis.
CHUNK_LATENCY_WINDOW = 512


@dataclass(frozen=True)
class SessionConfig:
    """Per-session checking configuration, as carried by ``open`` frames."""

    workload: str = "list-append"
    consistency_model: str = SERIALIZABLE
    chunk_ops: int = DEFAULT_CHUNK_OPS
    process_edges: bool = True
    realtime_edges: bool = True
    timestamp_edges: bool = False
    #: Total-ops quota: a batch that would push ``ops_ingested`` past it
    #: is refused with a structured ``quota`` error (``None`` = no cap).
    max_ops: Optional[int] = None
    #: Analyze-time quota in seconds: once the session has consumed this
    #: much checker time, further appends are refused (``None`` = no cap).
    max_analyze_seconds: Optional[float] = None
    #: Auto-retirement: after each analysis slice, retire the settled
    #: prefix but spare the newest N transactions.  0 disables.  Only
    #: streams that rotate their keyspace should opt in — a retired key
    #: that recurs poisons the session (:class:`~repro.errors.
    #: RetiredKeyError`), never silently corrupts its verdicts.
    retire_idle_txns: int = 0
    #: Extra analyzer options (e.g. rw-register ``sources``); values must
    #: be JSON-representable since they ride the ``open`` frame.
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.chunk_ops <= 0:
            raise ServiceError(
                f"chunk_ops must be positive, got {self.chunk_ops}"
            )
        if self.max_ops is not None and self.max_ops <= 0:
            raise ServiceError(
                f"max_ops must be positive, got {self.max_ops}"
            )
        if (
            self.max_analyze_seconds is not None
            and self.max_analyze_seconds <= 0
        ):
            raise ServiceError(
                "max_analyze_seconds must be positive, got "
                f"{self.max_analyze_seconds}"
            )
        if self.retire_idle_txns < 0:
            raise ServiceError(
                f"retire_idle_txns must be >= 0, got {self.retire_idle_txns}"
            )


class Session:
    """One checking stream: a streaming checker plus its backlog and books."""

    def __init__(
        self,
        session_id: str,
        config: SessionConfig,
        clock: Callable[[], float] = time.monotonic,
        obs: Optional[Observability] = None,
    ) -> None:
        self.id = session_id
        self.config = config
        self._clock = clock
        self.obs = obs
        # Workload/model validation happens here, so a bad ``open`` frame
        # fails before the registry ever records the session.
        options = dict(config.options)
        sources = options.pop("sources", None)
        if sources is not None:
            options["sources"] = tuple(sources)
        self.checker = StreamingChecker(
            workload=config.workload,
            consistency_model=config.consistency_model,
            process_edges=config.process_edges,
            realtime_edges=config.realtime_edges,
            timestamp_edges=config.timestamp_edges,
            **options,
        )
        self.pending: deque = deque()
        self.ops_ingested = 0
        self.chunks_checked = 0
        self.keys_reanalyzed = 0
        self.keys_reused = 0
        self.analyze_seconds = 0.0
        self.max_chunk_seconds = 0.0
        self.last_slice_seconds = 0.0
        #: Recent per-chunk analysis latencies in ms — the sample window
        #: behind the ``last_chunk_ms`` p50/p95/p99 digest in ``stats``.
        self.chunk_ms_window: deque = deque(maxlen=CHUNK_LATENCY_WINDOW)
        #: Spans recorded for this session's next chunk before analysis
        #: ran (frame decode, backlog buffering) — the server parks them
        #: here; the tracer folds them into the next chunk's trace.
        #: Bounded: a client whose appends keep being refused must not
        #: grow it between the chunks that would drain it.
        self.trace_spans: deque = deque(maxlen=32)
        #: Scheduler state: seconds of analysis credit.  Refilled by
        #: ``quantum_seconds`` per scheduling visit, charged at each
        #: slice's wall-clock cost; an expensive slice leaves the session
        #: in debt and it sits out rotations until the debt is paid.
        self.deficit = 0.0
        self.quota_trips = 0
        self.txns_retired = 0
        self.retire_calls = 0
        self.last_update: Optional[StreamUpdate] = None
        self.error: Optional[BaseException] = None
        self.closed = False
        self.last_activity = clock()
        # Durability / resume bookkeeping (see repro.service.durability):
        # the highest acked append sequence number, the highest operation
        # index accepted (analyzed or buffered — the duplicate-delivery
        # dedupe line), and how many ops the newest checkpoint covers.
        self.applied_seq = 0
        self.last_buffered_index = -1
        self.checkpointed_ops = 0
        self.resumed = False

    # ------------------------------------------------------------------

    @property
    def backlog(self) -> int:
        """Operations buffered but not yet analyzed."""
        return len(self.pending)

    @property
    def has_work(self) -> bool:
        """True when the analyzer loop should give this session a slice."""
        return bool(self.pending) and self.error is None and not self.closed

    @property
    def state(self) -> str:
        if self.closed:
            return "closed"
        if self.error is not None:
            return "poisoned"
        return "open"

    @property
    def resident_ops(self) -> int:
        """Operations currently held in memory (checker plus backlog)."""
        return self.checker.resident_ops + len(self.pending)

    @property
    def retired_ops(self) -> int:
        """Operations dropped by settled-prefix retirement."""
        return self.checker.retired_ops

    @property
    def est_bytes(self) -> int:
        """Deterministic footprint estimate for watermark accounting."""
        return self.checker.estimated_bytes() + len(self.pending) * 400

    def touch(self) -> None:
        self.last_activity = self._clock()

    def buffer(self, ops: Sequence[Op]) -> None:
        """Accept one ``append`` batch into the backlog.

        Quota trips are structured errors (``code="quota"``), not
        poisonings: the batch is refused, but the session — and every
        verdict over what it already ingested — stays intact.
        """
        if self.closed:
            raise ServiceError(f"session {self.id!r} is closed")
        if self.error is not None:
            raise ServiceError(
                f"session {self.id!r} is poisoned: {self.error}",
                code="poisoned",
            )
        quota = self.config.max_ops
        if quota is not None and self.ops_ingested + len(ops) > quota:
            self._trip_quota("ops", quota)
            raise ServiceError(
                f"session {self.id!r} ops quota exceeded: "
                f"{self.ops_ingested} ingested + {len(ops)} > {quota}",
                code="quota",
            )
        budget = self.config.max_analyze_seconds
        if budget is not None and self.analyze_seconds >= budget:
            self._trip_quota("analyze_seconds", budget)
            raise ServiceError(
                f"session {self.id!r} analyze-time quota exceeded: "
                f"{self.analyze_seconds:.3f}s >= {budget}s",
                code="quota",
            )
        self.pending.extend(ops)
        self.ops_ingested += len(ops)
        obs = self.obs
        if obs is not None and obs.metrics is not None:
            obs.metrics.ops_ingested_total.labels(self.id).inc(len(ops))
        if ops:
            self.last_buffered_index = max(
                self.last_buffered_index, ops[-1].index
            )
        self.touch()

    def _trip_quota(self, quota: str, limit: Any) -> None:
        """Book one quota refusal (counter, metric, event)."""
        self.quota_trips += 1
        obs = self.obs
        if obs is not None:
            if obs.metrics is not None:
                obs.metrics.quota_trips_total.labels(quota).inc()
            obs.emit(
                "quota-trip",
                level="warn",
                session=self.id,
                quota=quota,
                limit=limit,
                ops_ingested=self.ops_ingested,
                analyze_seconds=round(self.analyze_seconds, 4),
            )

    def dedupe_ops(self, ops: Sequence[Op]) -> List[Op]:
        """Drop operations this session has already accepted.

        Operation indices are strictly increasing across a stream
        (:meth:`History.extend` enforces it), so everything at or below
        ``last_buffered_index`` is a duplicate delivery — a reconnecting
        client re-sending a batch the daemon journaled (maybe partially
        acked) before dying.  Idempotent resume falls out: re-sending is
        always safe.
        """
        threshold = self.last_buffered_index
        return [op for op in ops if op.index > threshold]

    def analyze_chunk(self) -> StreamUpdate:
        """Run one bounded slice: up to ``chunk_ops`` backlog operations.

        A failing chunk poisons the session exactly like
        :meth:`StreamingChecker.extend` poisons its stream; the rest of
        the backlog is discarded because the prefix it would extend can
        no longer be trusted.
        """
        if self.error is not None:
            raise self.error
        take = min(len(self.pending), self.config.chunk_ops)
        chunk = [self.pending.popleft() for _ in range(take)]
        obs = self.obs
        tracer = obs.tracer if obs is not None else None
        chunk_profile = (
            tracer.chunk_profile() if tracer is not None else None
        )
        pre_spans = list(self.trace_spans)
        self.trace_spans.clear()
        begin = self._clock()
        try:
            update = self.checker.extend(chunk, profile=chunk_profile)
            if self.config.retire_idle_txns:
                # Opt-in auto-retirement rides the analyzer's cadence:
                # after each slice, fold the settled prefix (sparing the
                # newest N transactions) so a forever-stream's resident
                # state tracks its active window, not its age.
                if chunk_profile is not None:
                    with chunk_profile.stage("retire"):
                        self.retire(
                            min_idle_txns=self.config.retire_idle_txns
                        )
                else:
                    self.retire(min_idle_txns=self.config.retire_idle_txns)
        except BaseException as exc:
            self.error = exc
            self.pending.clear()
            if obs is not None:
                obs.emit(
                    "session-poisoned",
                    level="error",
                    session=self.id,
                    chunk=self.chunks_checked,
                    error=str(exc),
                )
            raise
        finally:
            elapsed = self._clock() - begin
            self.analyze_seconds += elapsed
            self.last_slice_seconds = elapsed
            self.max_chunk_seconds = max(self.max_chunk_seconds, elapsed)
        self.chunks_checked += 1
        self.keys_reanalyzed += update.reanalyzed_keys
        self.keys_reused += update.reused_keys
        self.last_update = update
        self.chunk_ms_window.append(elapsed * 1000.0)
        if obs is not None:
            if obs.metrics is not None:
                obs.metrics.chunks_checked_total.labels(self.id).inc()
                obs.metrics.chunk_analyze_seconds.labels(self.id).observe(
                    elapsed
                )
                if update.new_anomalies:
                    obs.metrics.anomalies_total.inc(
                        len(update.new_anomalies)
                    )
            if update.new_anomalies:
                obs.emit(
                    "anomalies",
                    level="warn",
                    session=self.id,
                    chunk=update.chunk,
                    new=len(update.new_anomalies),
                    total=len(update.result.anomalies),
                )
            if tracer is not None:
                trace = tracer.record(
                    session=self.id,
                    chunk=update.chunk,
                    ops=len(chunk),
                    txns=update.txns,
                    elapsed_seconds=elapsed,
                    profile=chunk_profile,
                    pre_spans=pre_spans,
                )
                if trace["slow"] and obs.metrics is not None:
                    obs.metrics.slow_chunks_total.inc()
        return update

    def retire(self, min_idle_txns: int = 0) -> Dict[str, Any]:
        """Retire the session's settled prefix (memory relief, not
        semantics: the verdict stream is unchanged — see
        :meth:`StreamingChecker.retire`)."""
        summary = self.checker.retire(min_idle_txns=min_idle_txns)
        self.retire_calls += 1
        self.txns_retired += summary.get("retired_txns", 0)
        return summary

    def verdict(self) -> StreamUpdate:
        """The verdict for everything ingested (backlog must be drained).

        A session that never analyzed a chunk gets the verdict on the
        empty observation, matching ``check_stream([])``.
        """
        if self.error is not None:
            raise ServiceError(
                f"session {self.id!r} is poisoned: {self.error}",
                code="poisoned",
            )
        if self.pending:
            raise ServiceError(
                f"session {self.id!r} still has {len(self.pending)} "
                "unanalyzed operations"
            )
        if self.last_update is None:
            return self.analyze_chunk()
        return self.last_update

    def stats(self) -> Dict[str, Any]:
        """The per-session counters the ``stats`` frame reports."""
        record: Dict[str, Any] = {
            "state": self.state,
            "workload": self.config.workload,
            "model": self.config.consistency_model,
            "chunk_ops": self.config.chunk_ops,
            "ops_ingested": self.ops_ingested,
            "backlog": self.backlog,
            "chunks_checked": self.chunks_checked,
            "keys_reanalyzed": self.keys_reanalyzed,
            "keys_reused": self.keys_reused,
            "analyze_seconds": round(self.analyze_seconds, 4),
            "max_chunk_seconds": round(self.max_chunk_seconds, 4),
            "last_chunk_ms": {
                name: round(value, 3)
                for name, value in percentiles(self.chunk_ms_window).items()
            },
            "resident_ops": self.resident_ops,
            "retired_ops": self.retired_ops,
            "retired_txns": self.txns_retired,
            "est_bytes": self.est_bytes,
            "quota_trips": self.quota_trips,
            "deficit": round(self.deficit, 4),
            "applied_seq": self.applied_seq,
            "resumed": self.resumed,
        }
        if self.config.max_ops is not None:
            record["max_ops"] = self.config.max_ops
        if self.config.max_analyze_seconds is not None:
            record["max_analyze_seconds"] = self.config.max_analyze_seconds
        if self.config.retire_idle_txns:
            record["retire_idle_txns"] = self.config.retire_idle_txns
        if self.error is not None:
            record["error"] = str(self.error)
        update = self.last_update
        if update is not None:
            record["last_verdict"] = {
                "chunk": update.chunk,
                "txns": update.txns,
                "valid": update.result.valid,
                "anomalies": len(update.result.anomalies),
                "new_anomalies": len(update.new_anomalies),
                "resolved": update.resolved,
            }
        return record


class SessionRegistry:
    """All live sessions, plus admission, scheduling, and eviction policy."""

    def __init__(
        self,
        max_sessions: int = 64,
        max_pending_ops: int = 50_000,
        idle_timeout: float = 300.0,
        default_chunk_ops: int = DEFAULT_CHUNK_OPS,
        clock: Callable[[], float] = time.monotonic,
        max_resident_bytes: Optional[int] = None,
        quantum_seconds: float = DEFAULT_QUANTUM_SECONDS,
        default_limits: Optional[SessionConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if max_sessions <= 0:
            raise ServiceError("max_sessions must be positive")
        if max_pending_ops <= 0:
            raise ServiceError("max_pending_ops must be positive")
        if max_resident_bytes is not None and max_resident_bytes <= 0:
            raise ServiceError("max_resident_bytes must be positive")
        if quantum_seconds <= 0:
            raise ServiceError("quantum_seconds must be positive")
        self.max_sessions = max_sessions
        self.max_pending_ops = max_pending_ops
        self.idle_timeout = idle_timeout
        self.default_chunk_ops = default_chunk_ops
        self.clock = clock
        self.max_resident_bytes = max_resident_bytes
        self.quantum_seconds = quantum_seconds
        #: Daemon-wide session defaults: quota and retirement fields that
        #: an ``open`` frame leaves unset are filled from here (the serve
        #: CLI's ``--session-max-ops`` etc. land in this config).
        self.default_limits = default_limits
        self.obs = obs
        self.sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._rotation: deque = deque()  # round-robin order of session ids
        self._auto_id = 0
        #: Called with each session just before idle eviction drops it.
        #: The durability layer hangs its final checkpoint here, so an
        #: evicted session can be restored from disk instead of starting
        #: empty when a client reopens it.  Memory-pressure eviction (rung
        #: two of the degradation ladder) only runs when this hook is
        #: wired, because without a checkpoint eviction would destroy
        #: state instead of parking it.
        self.on_evict: Optional[Callable[[Session], None]] = None
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_evicted = 0
        self.ops_total = 0
        self.chunks_total = 0
        self.shed_opens = 0
        self.pressure_retired_txns = 0
        self.pressure_evictions = 0

    # ------------------------------------------------------------------
    # Lifecycle

    def open(
        self,
        config: Optional[SessionConfig] = None,
        session_id: Optional[str] = None,
    ) -> Session:
        if session_id is None:
            self._auto_id += 1
            session_id = f"session-{self._auto_id}"
        if session_id in self.sessions:
            raise ServiceError(
                f"session {session_id!r} already open",
                code="duplicate-session",
            )
        if len(self.sessions) >= self.max_sessions:
            raise ServiceError(
                f"session table full ({self.max_sessions}); close a "
                "session or let idle ones evict",
                code="server-full",
            )
        if self.overloaded():
            # Last rung of the degradation ladder: try to relieve memory
            # pressure first; shed the open only when retirement and
            # eviction could not bring the footprint under the watermark.
            self.relieve_pressure()
            if self.overloaded():
                self.shed_opens += 1
                if self.obs is not None:
                    if self.obs.metrics is not None:
                        self.obs.metrics.shed_opens_total.inc()
                    self.obs.emit(
                        "shed-open",
                        level="warn",
                        session=session_id,
                        est_bytes=self.estimated_bytes(),
                        watermark=self.max_resident_bytes,
                        retry_after=self.retry_after_seconds(),
                    )
                raise ServiceError(
                    "resident memory over watermark "
                    f"({self.estimated_bytes()} > "
                    f"{self.max_resident_bytes} estimated bytes); "
                    "retry after existing sessions drain",
                    code="overloaded",
                    retry_after=self.retry_after_seconds(),
                )
        session = Session(
            session_id,
            self._effective_config(config),
            clock=self.clock,
            obs=self.obs,
        )
        self.sessions[session_id] = session
        self._rotation.append(session_id)
        self.sessions_opened += 1
        if self.obs is not None:
            if self.obs.metrics is not None:
                self.obs.metrics.sessions_opened_total.inc()
            self.obs.emit(
                "session-open",
                session=session_id,
                workload=session.config.workload,
                model=session.config.consistency_model,
            )
        return session

    def _effective_config(
        self, config: Optional[SessionConfig]
    ) -> SessionConfig:
        """Fill quota/retirement fields left unset from daemon defaults."""
        config = config or SessionConfig()
        defaults = self.default_limits
        if defaults is None:
            return config
        updates: Dict[str, Any] = {}
        if config.max_ops is None and defaults.max_ops is not None:
            updates["max_ops"] = defaults.max_ops
        if (
            config.max_analyze_seconds is None
            and defaults.max_analyze_seconds is not None
        ):
            updates["max_analyze_seconds"] = defaults.max_analyze_seconds
        if not config.retire_idle_txns and defaults.retire_idle_txns:
            updates["retire_idle_txns"] = defaults.retire_idle_txns
        if not updates:
            return config
        import dataclasses

        return dataclasses.replace(config, **updates)

    def get(self, session_id: Any) -> Session:
        session = self.sessions.get(session_id)
        if session is None:
            raise ServiceError(
                f"unknown session {session_id!r} (never opened, closed, "
                "or evicted as idle)",
                code="unknown-session",
            )
        return session

    def close(self, session_id: str) -> Dict[str, Any]:
        """Remove a session; returns its final counters."""
        session = self.get(session_id)
        session.closed = True
        final = session.stats()
        del self.sessions[session_id]
        self._rotation.remove(session_id)
        self.sessions_closed += 1
        if self.obs is not None:
            if self.obs.metrics is not None:
                self.obs.metrics.sessions_closed_total.inc()
            self.obs.emit(
                "session-close",
                session=session_id,
                ops_ingested=final["ops_ingested"],
                chunks_checked=final["chunks_checked"],
            )
        return final

    def evict_idle(self, now: Optional[float] = None) -> List[str]:
        """Drop sessions idle past the timeout (only with empty backlogs:
        buffered work is never silently discarded)."""
        now = self.clock() if now is None else now
        victims = [
            session_id
            for session_id, session in self.sessions.items()
            if not session.pending
            and now - session.last_activity >= self.idle_timeout
        ]
        for session_id in victims:
            session = self.sessions[session_id]
            if self.on_evict is not None:
                self.on_evict(session)
            del self.sessions[session_id]
            session.closed = True
            self._rotation.remove(session_id)
            self.sessions_evicted += 1
            if self.obs is not None:
                if self.obs.metrics is not None:
                    self.obs.metrics.sessions_evicted_total.inc()
                self.obs.emit(
                    "session-evict",
                    session=session_id,
                    idle_seconds=round(now - session.last_activity, 3),
                )
        return victims

    # ------------------------------------------------------------------
    # Admission and scheduling

    def accepts(self, session: Session) -> bool:
        """High-watermark admission: may this session buffer another batch?

        A batch is admitted while the backlog is *below* the limit, so
        one batch may overshoot it — which keeps arbitrary client batch
        sizes deadlock-free (a batch larger than the whole buffer still
        gets in, one admission at a time).
        """
        return session.backlog < self.max_pending_ops

    def append(self, session_id: str, ops: Sequence[Op]) -> Session:
        """Buffer a decoded batch into a session (the ``append`` frame)."""
        session = self.get(session_id)
        session.buffer(ops)
        self.ops_total += len(ops)
        return session

    def next_runnable(self) -> Optional[Session]:
        """The next session owed an analysis slice: deficit round-robin.

        Visits sessions in rotation order; each visit refills the
        session's time deficit by one quantum (capped at a quantum, so
        idle periods don't bank unbounded credit).  The first session
        with work *and* a positive deficit runs.  When every runnable
        session is in debt — all elephants — the least indebted one runs
        anyway (work-conserving: the analyzer never idles while work
        exists).  With uniformly cheap slices every visit's refill keeps
        deficits positive and this degenerates to plain round-robin,
        strict alternation included.
        """
        fallback: Optional[Session] = None
        for _ in range(len(self._rotation)):
            session_id = self._rotation[0]
            self._rotation.rotate(-1)
            session = self.sessions.get(session_id)
            if session is None or not session.has_work:
                continue
            session.deficit = min(
                session.deficit + self.quantum_seconds, self.quantum_seconds
            )
            if session.deficit > 0:
                return session
            if fallback is None or session.deficit > fallback.deficit:
                fallback = session
        return fallback

    def run_slice(
        self,
    ) -> Optional[Tuple[Session, Optional[StreamUpdate], Optional[BaseException]]]:
        """Analyze one bounded chunk of the next runnable session.

        Returns ``None`` when no session has work; otherwise the session
        plus either its fresh update or the exception that poisoned it
        (already recorded on the session — the server keeps running).
        The slice's wall-clock cost is charged against the session's
        scheduler deficit and counts toward its ``max_analyze_seconds``
        quota.
        """
        session = self.next_runnable()
        if session is None:
            return None
        self.chunks_total += 1
        try:
            update = session.analyze_chunk()
        except Exception as exc:
            session.deficit -= session.last_slice_seconds
            return session, None, exc
        session.deficit -= session.last_slice_seconds
        return session, update, None

    def drain(self, session: Session) -> None:
        """Synchronously analyze a session's whole backlog (client-less
        use: tests, in-process embedding).  The server's analyzer loop is
        the asynchronous equivalent, fair across sessions."""
        while session.has_work:
            session.analyze_chunk()

    def has_work(self) -> bool:
        return any(s.has_work for s in self.sessions.values())

    # ------------------------------------------------------------------
    # Memory governance: watermarks and the degradation ladder

    def estimated_bytes(self) -> int:
        """Estimated resident footprint across every session."""
        return sum(s.est_bytes for s in self.sessions.values())

    def overloaded(self) -> bool:
        """True when the footprint estimate is at/over the watermark."""
        return (
            self.max_resident_bytes is not None
            and self.estimated_bytes() >= self.max_resident_bytes
        )

    def retry_after_seconds(self) -> float:
        """Back-off hint attached to shed ``open`` replies."""
        return min(30.0, max(1.0, self.idle_timeout / 4))

    def relieve_pressure(self) -> Dict[str, Any]:
        """Climb the degradation ladder until under the watermark.

        Rung one retires settled prefixes of consenting sessions
        (``retire_idle_txns > 0``), fattest first — retirement never
        changes verdicts, so it is always the first resort.  Rung two
        checkpoint-and-evicts the coldest sessions with empty backlogs,
        but only when the ``on_evict`` checkpoint hook is wired (durable
        daemons): an eviction without a checkpoint would destroy state.
        Rung three — shedding new opens — lives in :meth:`open`.  Returns
        what the climb did (``retired_txns``, ``evicted``).
        """
        actions: Dict[str, Any] = {"retired_txns": 0, "evicted": []}
        if not self.overloaded():
            return actions
        by_weight = sorted(
            self.sessions.values(), key=lambda s: s.est_bytes, reverse=True
        )
        for session in by_weight:
            if session.error is not None or session.closed:
                continue
            if not session.config.retire_idle_txns:
                continue
            # Under pressure the idle window is ignored: retirement never
            # changes verdicts, so the most aggressive retire is still
            # safe — the window is comfort, not correctness.
            summary = session.retire(min_idle_txns=0)
            retired = summary.get("retired_txns", 0)
            actions["retired_txns"] += retired
            self.pressure_retired_txns += retired
            if retired and self.obs is not None:
                if self.obs.metrics is not None:
                    self.obs.metrics.pressure_actions_total.labels(
                        "retire"
                    ).inc()
                self.obs.emit(
                    "pressure-retire",
                    level="warn",
                    session=session.id,
                    retired_txns=retired,
                    est_bytes=self.estimated_bytes(),
                    watermark=self.max_resident_bytes,
                )
            if not self.overloaded():
                return actions
        if self.on_evict is not None:
            cold = sorted(
                (s for s in self.sessions.values() if not s.pending),
                key=lambda s: s.last_activity,
            )
            for session in cold:
                if not self.overloaded():
                    break
                self.on_evict(session)
                del self.sessions[session.id]
                session.closed = True
                self._rotation.remove(session.id)
                self.sessions_evicted += 1
                self.pressure_evictions += 1
                actions["evicted"].append(session.id)
                if self.obs is not None:
                    if self.obs.metrics is not None:
                        self.obs.metrics.pressure_actions_total.labels(
                            "evict"
                        ).inc()
                        self.obs.metrics.sessions_evicted_total.inc()
                    self.obs.emit(
                        "pressure-evict",
                        level="warn",
                        session=session.id,
                        est_bytes=self.estimated_bytes(),
                        watermark=self.max_resident_bytes,
                    )
        return actions

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Server-wide counters for the ``stats`` frame."""
        sessions = self.sessions.values()
        return {
            "sessions_open": len(self.sessions),
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "sessions_evicted": self.sessions_evicted,
            "ops_ingested": self.ops_total,
            "chunks_checked": self.chunks_total,
            "backlog": sum(s.backlog for s in sessions),
            "resident_ops": sum(s.resident_ops for s in sessions),
            "retired_ops": sum(s.retired_ops for s in sessions),
            "retired_txns": sum(s.txns_retired for s in sessions),
            "est_bytes": self.estimated_bytes(),
            "max_resident_bytes": self.max_resident_bytes,
            "shed_opens": self.shed_opens,
            "quota_trips": sum(s.quota_trips for s in sessions),
            "pressure_retired_txns": self.pressure_retired_txns,
            "pressure_evictions": self.pressure_evictions,
            "quantum_seconds": self.quantum_seconds,
            "max_sessions": self.max_sessions,
            "max_pending_ops": self.max_pending_ops,
            "idle_timeout": self.idle_timeout,
        }
