"""The checker daemon: an asyncio JSON-lines server over TCP/unix sockets.

One event loop multiplexes every connection and every session — the right
shape for a single-core box, where concurrency comes from interleaving,
not threads.  The split of labor with :mod:`repro.service.session`:

* each connection runs :meth:`CheckerService._handle` — read a frame,
  dispatch, write exactly one reply, repeat;
* one *analyzer task* repeatedly asks the registry for the next runnable
  session and analyzes a single bounded chunk, then yields the loop, so
  socket reads/writes interleave between slices and no session starves
  another;
* ``append`` replies are withheld while a session's backlog is at its
  high-watermark (:meth:`SessionRegistry.accepts`), which stalls the
  lockstep client — backpressure without any dedicated flow-control
  frames;
* an eviction task sweeps idle sessions on a timer.

``drain()`` is the graceful-shutdown path (wired to SIGTERM/SIGINT by
:func:`serve`): stop accepting connections, finish analyzing every
buffered operation, answer whatever frames are still in flight, write the
final stats record if configured, and return.  A client that already got
its verdicts sees a clean EOF.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from time import perf_counter
from typing import Any, Dict, List, Optional

from ..errors import ProtocolError, ReproError, ServiceError
from ..obs import Observability
from ..obs.httpd import MetricsExporter
from .durability import DurabilityManager
from .protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    decode_ops,
    encode_frame,
    request_type,
    update_record,
)
from .session import SessionConfig, SessionRegistry

#: How often the eviction sweep runs, as a fraction of the idle timeout.
EVICTION_SWEEPS_PER_TIMEOUT = 4


class CheckerService:
    """The daemon: listeners, the analyzer loop, and frame dispatch."""

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        *,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        stats_path: Optional[str] = None,
        durability: Optional[DurabilityManager] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        obs: Optional[Observability] = None,
        metrics_host: str = "127.0.0.1",
        metrics_port: Optional[int] = None,
    ) -> None:
        if port is None and unix_path is None:
            raise ServiceError("need a TCP port and/or a unix socket path")
        if max_frame_bytes <= 0:
            raise ServiceError("max_frame_bytes must be positive")
        if metrics_port is not None and (
            obs is None or obs.registry is None
        ):
            raise ServiceError(
                "metrics_port needs an Observability with a registry"
            )
        self.registry = registry if registry is not None else SessionRegistry()
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.stats_path = stats_path
        self.durability = durability
        self.max_frame_bytes = max_frame_bytes
        self.obs = obs
        self.metrics_host = metrics_host
        self.metrics_port = metrics_port
        self.exporter: Optional[MetricsExporter] = None
        self.started_at: Optional[float] = None
        self._started_mono: Optional[float] = None
        self.addresses: List[str] = []
        self._servers: List[asyncio.AbstractServer] = []
        self._connections: set = set()
        self._tasks: List[asyncio.Task] = []
        self._work = asyncio.Event()
        self._progress = asyncio.Condition()
        self._draining = False
        self._stopped = asyncio.Event()
        if obs is not None:
            # One bundle for the whole stack: the registry and durability
            # layers inherit the server's instruments unless a test wired
            # their own.
            if self.registry.obs is None:
                self.registry.obs = obs
            if durability is not None and durability.obs is None:
                durability.obs = obs
            if obs.registry is not None:
                self._register_gauges(obs.registry)
        if durability is not None:
            # Idle eviction must leave a restorable session behind: the
            # final checkpoint covers everything analyzed (eviction only
            # fires on empty backlogs), so a later open restores it.
            self.registry.on_evict = self._checkpoint_for_eviction

    def _register_gauges(self, metrics_registry) -> None:
        """Callback gauges: scrape-time reads of the registry's truth."""
        registry = self.registry
        metrics_registry.gauge(
            "repro_sessions_open",
            "Sessions currently open.",
            fn=lambda: len(registry.sessions),
        )
        metrics_registry.gauge(
            "repro_backlog_ops",
            "Operations buffered but not yet analyzed, all sessions.",
            fn=lambda: sum(
                s.backlog for s in registry.sessions.values()
            ),
        )
        metrics_registry.gauge(
            "repro_resident_ops",
            "Operations resident in memory (checker state plus backlogs).",
            fn=lambda: sum(
                s.resident_ops for s in registry.sessions.values()
            ),
        )
        metrics_registry.gauge(
            "repro_est_bytes",
            "Estimated resident footprint in bytes, all sessions.",
            fn=registry.estimated_bytes,
        )
        metrics_registry.gauge(
            "repro_uptime_seconds",
            "Seconds since the daemon's listeners bound.",
            fn=self.uptime_seconds,
        )
        metrics_registry.gauge(
            "repro_draining",
            "1 while the daemon is draining, else 0.",
            fn=lambda: 1 if self._draining else 0,
        )

    def uptime_seconds(self) -> float:
        if self._started_mono is None:
            return 0.0
        return time.monotonic() - self._started_mono

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> List[str]:
        """Bind the listeners and start the background tasks.

        Returns the bound addresses (``host:port`` — with the real port
        when 0 asked for an ephemeral one — and/or ``unix:path``).
        """
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle, self.host, self.port, limit=self.max_frame_bytes
            )
            bound = server.sockets[0].getsockname()
            self.port = bound[1]
            self.addresses.append(f"{bound[0]}:{bound[1]}")
            self._servers.append(server)
        if self.unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle, self.unix_path, limit=self.max_frame_bytes
            )
            self.addresses.append(f"unix:{self.unix_path}")
            self._servers.append(server)
        self.started_at = time.time()
        self._started_mono = time.monotonic()
        if self.metrics_port is not None:
            self.exporter = MetricsExporter(
                self.obs.registry,
                host=self.metrics_host,
                port=self.metrics_port,
                tracer=self.obs.tracer,
                health=self._pong,
            )
            self.metrics_port = await self.exporter.start()
        if self.obs is not None:
            self.obs.emit(
                "serve-start",
                addresses=list(self.addresses),
                metrics=(
                    self.exporter.address
                    if self.exporter is not None
                    else None
                ),
            )
        self._tasks.append(asyncio.create_task(self._analyze_loop()))
        self._tasks.append(asyncio.create_task(self._evict_loop()))
        return self.addresses

    async def drain(self) -> Dict[str, Any]:
        """Graceful shutdown: no new connections, all backlogs analyzed."""
        if self._draining:
            await self._stopped.wait()
            return self.stats_record()
        self._draining = True
        if self.obs is not None:
            self.obs.emit(
                "drain-begin",
                sessions=len(self.registry.sessions),
                backlog=sum(
                    s.backlog for s in self.registry.sessions.values()
                ),
            )
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        # Let the analyzer finish every buffered chunk before stopping it.
        self._work.set()
        async with self._progress:
            while self.registry.has_work():
                await self._progress.wait()
            # Wake parked append waiters so they observe the drain and
            # refuse their batches instead of buffering unanalyzed ops.
            self._progress.notify_all()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        # Belt and braces: if anything slipped into a backlog between the
        # quiescence check and the analyzer stopping, finish it inline —
        # the stats snapshot (and CI's backlog == 0 assertion) must
        # describe a fully analyzed state.
        while self.registry.has_work():
            self.registry.run_slice()
        if self.durability is not None:
            # A drained daemon restarts from checkpoints alone: every
            # healthy session's full state lands on disk before exit.
            for session in self.registry.sessions.values():
                if session.error is None:
                    self.durability.checkpoint(session)
            self.durability.close()
        for writer in list(self._connections):
            writer.close()
        if self.unix_path is not None:
            import os

            try:
                os.unlink(self.unix_path)
            except OSError:
                pass
        record = self.stats_record()
        if self.stats_path is not None:
            with open(self.stats_path, "w", encoding="utf-8") as fh:
                json.dump(record, fh, indent=2)
                fh.write("\n")
        if self.obs is not None:
            summary = record["server"]
            self.obs.emit(
                "drain-complete",
                sessions_opened=summary["sessions_opened"],
                ops_ingested=summary["ops_ingested"],
                chunks_checked=summary["chunks_checked"],
            )
        # The exporter outlives the listeners on purpose — a scrape racing
        # the drain still answers — and stops only once the final stats
        # snapshot exists.
        if self.exporter is not None:
            await self.exporter.stop()
        self._stopped.set()
        return record

    def stats_record(self) -> Dict[str, Any]:
        """The full stats snapshot (the ``stats`` frame body, plus state)."""
        record = {
            "type": "stats",
            "addresses": list(self.addresses),
            "draining": self._draining,
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "server": self.registry.stats(),
            "sessions": {
                session_id: session.stats()
                for session_id, session in self.registry.sessions.items()
            },
        }
        if self.started_at is not None:
            record["started_at"] = round(self.started_at, 3)
        if self.exporter is not None:
            record["metrics_address"] = self.exporter.address
        if self.durability is not None:
            record["durability"] = self.durability.stats()
        return record

    def _checkpoint_for_eviction(self, session) -> None:
        """The registry's pre-eviction hook (durable daemons only)."""
        if session.error is None:
            try:
                self.durability.checkpoint(session)
            except Exception:  # pragma: no cover - disk full etc.
                # Losing a checkpoint degrades restart cost (full WAL
                # replay), never correctness: the WAL has every acked op.
                pass

    # ------------------------------------------------------------------
    # Background tasks

    async def _analyze_loop(self) -> None:
        """Round-robin bounded slices: the service's only analysis driver."""
        while True:
            outcome = self.registry.run_slice()
            if outcome is None:
                self._work.clear()
                async with self._progress:
                    self._progress.notify_all()
                await self._work.wait()
                continue
            session, update, exc = outcome
            if (
                self.durability is not None
                and update is not None
                and exc is None
            ):
                # Periodic checkpoints ride the analyzer's cadence: after
                # a slice lands, snapshot if enough new ops were analyzed
                # since the last one.  Synchronous, like the slice itself
                # — bounded work between yields.
                try:
                    self.durability.maybe_checkpoint(session)
                except Exception:  # pragma: no cover - disk full etc.
                    pass  # degraded restart cost only; the WAL is intact
            # One chunk analyzed (or a session poisoned — also progress):
            # wake verdict waiters and backpressured appends, then yield
            # the loop so socket I/O interleaves between slices.
            async with self._progress:
                self._progress.notify_all()
            await asyncio.sleep(0)

    async def _evict_loop(self) -> None:
        interval = max(
            self.registry.idle_timeout / EVICTION_SWEEPS_PER_TIMEOUT, 0.05
        )
        while True:
            await asyncio.sleep(interval)
            self.registry.evict_idle()
            # Same sweep, same clock: when the resident estimate is over
            # the watermark, climb the degradation ladder (retire settled
            # prefixes, then checkpoint-and-evict the coldest sessions).
            self.registry.relieve_pressure()

    # ------------------------------------------------------------------
    # Connections

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as exc:
                    if not exc.partial:
                        break  # clean EOF between frames
                    line = exc.partial  # final frame missing its newline
                except asyncio.LimitOverrunError as exc:
                    # Oversized frame: discard through the next newline,
                    # answer with a structured error, and keep both the
                    # connection and the session alive — one bad frame
                    # must not poison anything.
                    dropped = await self._discard_oversized_line(
                        reader, exc
                    )
                    self._count_error(
                        "frame-too-large",
                        None,
                        f"frame exceeds {self.max_frame_bytes} bytes",
                    )
                    writer.write(encode_frame({
                        "type": "error",
                        "code": "frame-too-large",
                        "error": (
                            f"frame exceeds {self.max_frame_bytes} bytes; "
                            "split the append into smaller batches"
                        ),
                    }))
                    await writer.drain()
                    if not dropped:  # EOF inside the oversized line
                        break
                    continue
                reply = await self._reply_for(line)
                writer.write(encode_frame(reply))
                await writer.drain()
        except ConnectionError:
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    @staticmethod
    async def _discard_oversized_line(reader, overrun) -> bool:
        """Consume bytes through the oversized line's newline, so the
        parser re-synchronizes on the following frame.  Returns False at
        EOF.

        ``readuntil`` raises ``LimitOverrunError`` *without* consuming:
        ``overrun.consumed`` is the scanned prefix (up to the separator
        when one was found, the whole buffer when not), so exactly that
        much is dropped — bytes after the newline belong to the next
        frame and survive.
        """
        while True:
            if overrun.consumed:
                await reader.readexactly(overrun.consumed)
            try:
                # Either the separator itself (sep-found case) or the
                # line's next byte (sep-not-yet-seen case).
                if await reader.readexactly(1) == b"\n":
                    return True
            except asyncio.IncompleteReadError:
                return False
            try:
                await reader.readuntil(b"\n")
                return True
            except asyncio.IncompleteReadError:
                return False
            except asyncio.LimitOverrunError as exc:
                overrun = exc

    async def _reply_for(self, line: bytes) -> Dict[str, Any]:
        session_id = None
        try:
            frame = decode_frame(line)
            session_id = frame.get("session")
            return await self._dispatch(frame)
        except (ReproError, ValueError) as exc:
            # Malformed frames, session poisonings, bad configs, unknown
            # sessions: the request fails with a structured, coded error;
            # the connection (and server) live on.
            code = getattr(exc, "code", "bad-request")
            reply = {
                "type": "error",
                "code": code,
                "error": str(exc),
                "session": session_id,
            }
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is not None:
                reply["retry_after"] = retry_after
            self._count_error(code, session_id, str(exc))
            return reply
        except Exception as exc:  # pragma: no cover - defensive
            # A daemon must outlive its bugs; the frame fails loudly
            # instead of tearing the connection (and every session) down.
            self._count_error("internal", session_id, str(exc))
            return {
                "type": "error",
                "code": "internal",
                "error": f"internal error: {type(exc).__name__}: {exc}",
                "session": session_id,
            }

    def _count_error(
        self, code: str, session_id: Any, message: str
    ) -> None:
        obs = self.obs
        if obs is None:
            return
        if obs.metrics is not None:
            obs.metrics.frame_errors_total.labels(code).inc()
        obs.emit(
            "frame-error",
            level="warn",
            code=code,
            session=session_id,
            error=message,
        )

    async def _dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        kind = request_type(frame)
        obs = self.obs
        if obs is not None and obs.metrics is not None:
            obs.metrics.frames_total.labels(kind).inc()
        if self._draining and kind in ("open", "append"):
            raise ServiceError(
                "server is draining; no new work accepted", code="draining"
            )
        if kind == "ping":
            return self._pong()
        if kind == "metrics":
            return self._metrics()
        if kind == "open":
            return self._open(frame)
        if kind == "stats":
            return self._stats(frame)
        # The remaining frames address an existing session.
        session = self.registry.get(frame.get("session"))
        session.touch()
        if kind == "append":
            return await self._append(session, frame)
        if kind == "verdict":
            return await self._verdict(session, frame)
        return await self._close(session)

    def _pong(self) -> Dict[str, Any]:
        """The ``ping`` health frame: cheap liveness plus load at a glance.

        Answered even while draining — a health checker must be able to
        distinguish "draining" from "dead".
        """
        registry = self.registry
        return {
            "type": "pong",
            "draining": self._draining,
            "sessions": len(registry.sessions),
            "backlog": sum(
                s.backlog for s in registry.sessions.values()
            ),
            "est_bytes": registry.estimated_bytes(),
            "overloaded": registry.overloaded(),
        }

    def _metrics(self) -> Dict[str, Any]:
        """The ``metrics`` frame: the registry snapshot over the wire.

        The JSON twin of the ``/metrics`` scrape, for clients already on
        the frame socket (no second port needed).  Answered even while
        draining, like ``ping`` and ``stats``.
        """
        obs = self.obs
        if obs is None or obs.registry is None:
            return {"type": "metrics", "enabled": False}
        reply: Dict[str, Any] = {
            "type": "metrics",
            "enabled": True,
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "families": obs.registry.snapshot(),
        }
        if self.exporter is not None:
            reply["scrape_address"] = self.exporter.address
        if obs.tracer is not None:
            reply["traces"] = {
                "chunks_traced": obs.tracer.chunks_traced,
                "slow_chunks": obs.tracer.slow_chunks,
                "capacity": obs.tracer.capacity,
                "slow_chunk_ms": obs.tracer.slow_chunk_ms,
            }
        return reply

    def _open(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        options = frame.get("options") or {}
        if not isinstance(options, dict):
            raise ProtocolError("open options must be a JSON object")
        chunk = frame.get("chunk", self.registry.default_chunk_ops)
        # Reject non-int chunks here: a float would pass the <= 0 check
        # and only blow up (poisoning the session and its buffered data)
        # deep inside a later analysis slice.
        if not isinstance(chunk, int) or isinstance(chunk, bool):
            raise ProtocolError(f"open chunk must be an integer, got {chunk!r}")
        for name in ("max_ops", "retire_idle_txns"):
            value = frame.get(name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise ProtocolError(
                    f"open {name} must be an integer, got {value!r}"
                )
        budget = frame.get("max_analyze_seconds")
        if budget is not None and (
            not isinstance(budget, (int, float)) or isinstance(budget, bool)
        ):
            raise ProtocolError(
                f"open max_analyze_seconds must be a number, got {budget!r}"
            )
        session_id = frame.get("session")
        resume = bool(frame.get("resume"))
        if frame.get("fresh") and self._durable_state(session_id):
            # Explicit wipe: the client wants a clean slate under a
            # recycled id, not whatever a previous run left on disk.
            if session_id not in self.registry.sessions:
                self.durability.drop(session_id, destroy=True)
        elif resume and session_id is not None:
            # Idempotent reattach: a reconnecting client re-opens its
            # session — live (the daemon never died, only the socket),
            # on disk (the daemon restarted, or evicted it), or gone
            # (fresh start).  The ``applied_seq`` in the reply tells the
            # client exactly which appends to re-send.
            existing = self.registry.sessions.get(session_id)
            if existing is None and self._durable_state(session_id):
                existing = self.durability.recover_session(
                    session_id, self.registry
                )
                existing.resumed = True
                self._work.set()
            if existing is not None:
                return self._opened_reply(existing, resumed=True)
        elif (
            session_id is not None
            and session_id not in self.registry.sessions
            and self._durable_state(session_id)
        ):
            # A plain open of a session that left durable state behind
            # (idle-evicted, or the daemon restarted under it) restores
            # from disk rather than silently starting empty.
            session = self.durability.recover_session(
                session_id, self.registry
            )
            session.resumed = True
            self._work.set()
            return self._opened_reply(session, resumed=True)
        config = SessionConfig(
            workload=frame.get("workload", "list-append"),
            consistency_model=frame.get(
                "model", SessionConfig.consistency_model
            ),
            chunk_ops=chunk,
            process_edges=frame.get("process_edges", True),
            realtime_edges=frame.get("realtime_edges", True),
            timestamp_edges=frame.get("timestamp_edges", False),
            max_ops=frame.get("max_ops"),
            max_analyze_seconds=frame.get("max_analyze_seconds"),
            retire_idle_txns=frame.get("retire_idle_txns") or 0,
            options=options,
        )
        session = self.registry.open(config, session_id)
        if self.durability is not None:
            try:
                self.durability.open_session(session)
            except BaseException:
                self.registry.close(session.id)
                raise
        return self._opened_reply(session, resumed=False)

    def _durable_state(self, session_id: Any) -> bool:
        return (
            self.durability is not None
            and isinstance(session_id, str)
            and self.durability.has_state(session_id)
        )

    def _opened_reply(self, session, resumed: bool) -> Dict[str, Any]:
        reply = {
            "type": "opened",
            "session": session.id,
            "workload": session.config.workload,
            "model": session.config.consistency_model,
            "chunk": session.config.chunk_ops,
            "applied_seq": session.applied_seq,
        }
        if resumed:
            reply["resumed"] = True
            reply["ops_ingested"] = session.ops_ingested
        return reply

    def _stats(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        session_id = frame.get("session")
        if session_id is not None:
            session = self.registry.get(session_id)
            return {
                "type": "stats",
                "session": session_id,
                "stats": session.stats(),
            }
        return self.stats_record()

    async def _append(self, session, frame: Dict[str, Any]) -> Dict[str, Any]:
        obs = self.obs
        tracer = obs.tracer if obs is not None else None
        decode_begin = perf_counter() if tracer is not None else 0.0
        ops = decode_ops(frame.get("ops", ()))
        if tracer is not None:
            # Parked on the session; the next analyzed chunk's trace
            # carries them as spans preceding ``analyze``.
            session.trace_spans.append(
                tracer.span("decode", perf_counter() - decode_begin)
            )
        seq = frame.get("seq")
        if seq is not None and (
            not isinstance(seq, int) or isinstance(seq, bool) or seq <= 0
        ):
            raise ProtocolError(
                f"append seq must be a positive integer, got {seq!r}"
            )
        # Backpressure: hold the reply until the backlog is below the
        # high-watermark.  The analyzer's progress notifications wake us;
        # a poisoning also unblocks (buffer() will then refuse the batch),
        # and so does a drain — whose quiescence check must not be raced
        # by a parked append buffering ops after the analyzer stopped.
        wait_begin: Optional[float] = None
        async with self._progress:
            while (
                not self.registry.accepts(session)
                and session.error is None
                and not self._draining
            ):
                if wait_begin is None:
                    wait_begin = perf_counter()
                await self._progress.wait()
        if wait_begin is not None and obs is not None:
            waited = perf_counter() - wait_begin
            if obs.metrics is not None:
                obs.metrics.backpressure_waits_total.inc()
                obs.metrics.backpressure_wait_seconds.observe(waited)
            obs.emit(
                "backpressure",
                level="debug",
                session=session.id,
                waited_ms=round(waited * 1000.0, 3),
                backlog=session.backlog,
            )
        if self._draining:
            raise ServiceError(
                "server is draining; no new work accepted", code="draining"
            )
        if seq is not None and seq <= session.applied_seq:
            # Duplicate delivery: the batch was applied and acked, but the
            # ack never reached the client (it reconnected and re-sent).
            # Acking again without re-applying makes re-delivery a no-op.
            return {
                "type": "appended",
                "session": session.id,
                "ops": 0,
                "deduped": len(ops),
                "buffered": session.backlog,
                "seq": seq,
                "applied_seq": session.applied_seq,
            }
        # Op-level dedupe catches the half-applied case: the server logged
        # and buffered the batch, then died before acking.  Indices are
        # strictly increasing across a stream, so anything at or below the
        # high-water mark has already been accepted.
        fresh = session.dedupe_ops(ops)
        deduped = len(ops) - len(fresh)
        if seq is None:
            seq = session.applied_seq + 1
        if self.durability is not None and fresh:
            # WAL first, ack second: once the reply goes out the ops must
            # survive a crash, so they hit the journal (flushed, and
            # fsynced per policy) before they are even buffered.
            self.durability.log_append(session, seq, fresh)
        if tracer is not None:
            buffer_begin = perf_counter()
            self.registry.append(session.id, fresh)
            session.trace_spans.append(
                tracer.span("buffer", perf_counter() - buffer_begin)
            )
        else:
            self.registry.append(session.id, fresh)
        session.applied_seq = seq
        self._work.set()
        reply = {
            "type": "appended",
            "session": session.id,
            "ops": len(fresh),
            "buffered": session.backlog,
            "seq": seq,
            "applied_seq": session.applied_seq,
        }
        if deduped:
            reply["deduped"] = deduped
        return reply

    async def _verdict(self, session, frame: Dict[str, Any]) -> Dict[str, Any]:
        await self._drain_session(session)
        update = session.verdict()
        record = update_record(update)
        record["session"] = session.id
        if frame.get("report"):
            record["report"] = update.result.report()
        return record

    async def _close(self, session) -> Dict[str, Any]:
        await self._drain_session(session)
        final = self.registry.close(session.id)
        if self.durability is not None:
            # An explicit close is the end of the session's story: its
            # journal and checkpoints have nothing left to recover.
            self.durability.drop(session.id, destroy=True)
        return {"type": "closed", "session": session.id, "stats": final}

    async def _drain_session(self, session) -> None:
        """Wait until the analyzer has consumed this session's backlog."""
        self._work.set()
        async with self._progress:
            while session.has_work:
                await self._progress.wait()


async def serve(
    *,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
    registry: Optional[SessionRegistry] = None,
    stats_path: Optional[str] = None,
    durability: Optional[DurabilityManager] = None,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    obs: Optional[Observability] = None,
    metrics_host: str = "127.0.0.1",
    metrics_port: Optional[int] = None,
    quiet: bool = False,
    ready: Optional[Any] = None,
) -> Dict[str, Any]:
    """Run a daemon until SIGTERM/SIGINT, then drain; returns final stats.

    ``ready``, when given, is called with the service once the listeners
    are bound (tests use it to learn ephemeral ports).  ``durability``
    makes every session crash-recoverable (see
    :mod:`repro.service.durability`).  ``obs`` switches on the telemetry
    stack (:mod:`repro.obs`); ``metrics_port`` additionally serves its
    registry as a Prometheus scrape on ``metrics_host``.
    """
    service = CheckerService(
        registry,
        host=host,
        port=port,
        unix_path=unix_path,
        stats_path=stats_path,
        durability=durability,
        max_frame_bytes=max_frame_bytes,
        obs=obs,
        metrics_host=metrics_host,
        metrics_port=metrics_port,
    )
    addresses = await service.start()
    if not quiet:
        for address in addresses:
            print(f"service: listening on {address}", flush=True)
        if service.exporter is not None:
            print(
                f"service: metrics on {service.exporter.address}/metrics",
                flush=True,
            )
    if ready is not None:
        ready(service)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    await stop.wait()
    if not quiet:
        print("service: draining", flush=True)
    record = await service.drain()
    if not quiet:
        summary = record["server"]
        print(
            "service: drained — "
            f"{summary['sessions_opened']} sessions, "
            f"{summary['ops_ingested']} ops, "
            f"{summary['chunks_checked']} chunks checked",
            flush=True,
        )
    return record


class BackgroundService:
    """A daemon on a private event loop in a thread (tests, benchmarks).

    The production deployment runs :func:`serve` on the main thread; this
    helper exists so synchronous code — pytest, the load benchmark, a
    notebook — can stand a real server up, talk to it over real sockets
    with the blocking client, and drain it deterministically.
    """

    def __init__(self, **kwargs: Any) -> None:
        self._kwargs = kwargs
        self.service: Optional[CheckerService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None
        self.stats: Optional[Dict[str, Any]] = None

    def __enter__(self) -> "BackgroundService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.drain()

    def start(self, timeout: float = 10.0) -> "BackgroundService":
        import threading

        started = threading.Event()

        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self.service = CheckerService(**self._kwargs)
            await self.service.start()
            started.set()
            await self.service._stopped.wait()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(main()), daemon=True
        )
        self._thread.start()
        if not started.wait(timeout):  # pragma: no cover - defensive
            raise ServiceError("background service failed to start")
        return self

    @property
    def addresses(self) -> List[str]:
        assert self.service is not None
        return self.service.addresses

    @property
    def tcp_address(self) -> str:
        assert self.service is not None
        return f"{self.service.host}:{self.service.port}"

    @property
    def metrics_address(self) -> str:
        """The scrape endpoint's base URL (requires ``metrics_port``)."""
        assert self.service is not None
        assert self.service.exporter is not None, "metrics_port not set"
        return self.service.exporter.address

    def drain(self, timeout: float = 30.0) -> Dict[str, Any]:
        if self._loop is None or self.service is None:
            return self.stats or {}
        if self.stats is None:
            future = asyncio.run_coroutine_threadsafe(
                self.service.drain(), self._loop
            )
            self.stats = future.result(timeout)
            self._thread.join(timeout)
        return self.stats


