"""Blocking client for the checker daemon, plus a multi-session load driver.

:class:`ServiceClient` speaks the lockstep frame protocol over a TCP or
unix socket: every request writes one line and reads one reply line, so
the client needs no event loop and embeds anywhere — test harnesses,
CI scripts, ``python -m repro --connect``.  Error replies raise
:class:`~repro.errors.ServiceError` with the server's message.

:func:`run_load` is the standing load generator: it builds N independent
observations from the existing workload generator (optionally with a
fault injector), opens N sessions on one connection, and interleaves
their ``append`` frames round-robin — the service's intended traffic
shape — then collects every verdict and the server's stats.  The CI
smoke job and ``benchmarks/bench_service.py`` both drive it.
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..db import INJECTORS, Isolation
from ..errors import ServiceError
from ..generator import RunConfig, WorkloadConfig, run_workload
from ..history.ops import Op
from .protocol import decode_frame, encode_frame, encode_ops

Address = Union[str, Tuple[str, int]]


def parse_address(text: str) -> Address:
    """``HOST:PORT`` or ``unix:PATH`` into a connectable address."""
    if text.startswith("unix:"):
        return text  # kept verbatim; connect() strips the scheme
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ServiceError(
            f"bad address {text!r}; expected HOST:PORT or unix:PATH"
        )
    return (host or "127.0.0.1", int(port))


class ServiceClient:
    """A lockstep connection to a running checker daemon."""

    def __init__(self, address: Address, timeout: float = 60.0) -> None:
        if isinstance(address, str):
            address = parse_address(address)
        if isinstance(address, str):  # "unix:PATH", kept verbatim
            scheme = len("unix:")
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(address[scheme:])
        else:
            self._sock = socket.create_connection(address, timeout=timeout)
        self._fh = self._sock.makefile("rwb")

    # ------------------------------------------------------------------

    def request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame, await its reply; error replies raise."""
        self._fh.write(encode_frame(frame))
        self._fh.flush()
        line = self._fh.readline()
        if not line:
            raise ServiceError("connection closed by server")
        reply = decode_frame(line)
        if reply.get("type") == "error":
            raise ServiceError(reply.get("error", "unknown service error"))
        return reply

    def open_session(
        self,
        session_id: Optional[str] = None,
        workload: str = "list-append",
        consistency_model: str = "serializable",
        chunk_ops: Optional[int] = None,
        timestamp_edges: bool = False,
        options: Optional[Dict[str, Any]] = None,
    ) -> str:
        frame: Dict[str, Any] = {
            "type": "open",
            "session": session_id or f"c-{uuid.uuid4().hex[:12]}",
            "workload": workload,
            "model": consistency_model,
            "timestamp_edges": timestamp_edges,
        }
        if chunk_ops is not None:
            frame["chunk"] = chunk_ops
        if options:
            frame["options"] = options
        return self.request(frame)["session"]

    def append(self, session_id: str, ops: Sequence[Op]) -> Dict[str, Any]:
        return self.request({
            "type": "append",
            "session": session_id,
            "ops": encode_ops(ops),
        })

    def verdict(self, session_id: str, report: bool = False) -> Dict[str, Any]:
        return self.request({
            "type": "verdict",
            "session": session_id,
            "report": bool(report),
        })

    def stats(self, session_id: Optional[str] = None) -> Dict[str, Any]:
        frame: Dict[str, Any] = {"type": "stats"}
        if session_id is not None:
            frame["session"] = session_id
        return self.request(frame)

    def close_session(self, session_id: str) -> Dict[str, Any]:
        return self.request({"type": "close", "session": session_id})

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Load generation


def session_workload(
    workload: str = "list-append",
    isolation: str = "serializable",
    fault: Optional[str] = None,
    seed: int = 0,
    txns: int = 500,
    concurrency: int = 8,
    active_keys: int = 4,
) -> List[Op]:
    """One session's worth of traffic from the simulator, as operations."""
    fault_factory = None
    if fault is not None:
        injector = INJECTORS[fault]

        def fault_factory(rng, _cls=injector):
            return _cls(rng)

    history = run_workload(
        RunConfig(
            txns=txns,
            concurrency=concurrency,
            isolation=Isolation(isolation),
            workload=WorkloadConfig(
                workload=workload, active_keys=active_keys
            ),
            seed=seed,
            faults=fault_factory,
        )
    )
    return list(history.ops)


def run_load(
    address: Address,
    *,
    sessions: int = 4,
    txns: int = 500,
    workload: str = "list-append",
    isolation: str = "serializable",
    fault: Optional[str] = None,
    consistency_model: str = "serializable",
    seed: int = 0,
    frame_ops: int = 250,
    chunk_ops: int = 1000,
    report: bool = False,
    streams: Optional[Dict[str, Sequence[Op]]] = None,
) -> Dict[str, Any]:
    """Drive N interleaved sessions against a daemon; returns the verdicts.

    Each session gets an independent simulated observation (seeds
    ``seed .. seed+N-1``); their ``append`` frames of ``frame_ops``
    operations are interleaved round-robin on one connection, the way
    many concurrent test runs would share one resident checker.  Returns
    per-session verdict records, the server stats, and throughput
    (``ops_per_second`` over the append+verdict phase).

    ``streams`` overrides the generated traffic with pre-built op
    sequences per session name (callers that also batch-check the same
    streams — the benchmark — generate each observation only once).
    """
    if streams is None:
        streams = {
            f"load-{index}": session_workload(
                workload=workload,
                isolation=isolation,
                fault=fault,
                seed=seed + index,
                txns=txns,
            )
            for index in range(sessions)
        }
    else:
        sessions = len(streams)
    with ServiceClient(address) as client:
        for name in streams:
            client.open_session(
                session_id=name,
                workload=workload,
                consistency_model=consistency_model,
                chunk_ops=chunk_ops,
            )
        begin = time.perf_counter()
        cursors = {name: 0 for name in streams}
        live = list(streams)
        while live:
            for name in list(live):
                ops = streams[name]
                start = cursors[name]
                if start >= len(ops):
                    live.remove(name)
                    continue
                client.append(name, ops[start:start + frame_ops])
                cursors[name] = start + frame_ops
        verdicts = {
            name: client.verdict(name, report=report) for name in streams
        }
        elapsed = time.perf_counter() - begin
        stats = client.stats()
        for name in streams:
            client.close_session(name)
    total_ops = sum(len(ops) for ops in streams.values())
    return {
        "sessions": sessions,
        "txns_per_session": txns,
        "ops": total_ops,
        "seconds": elapsed,
        "ops_per_second": total_ops / elapsed if elapsed else float("inf"),
        "verdicts": verdicts,
        "stats": stats,
    }
