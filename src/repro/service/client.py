"""Blocking client for the checker daemon, plus a multi-session load driver.

:class:`ServiceClient` speaks the lockstep frame protocol over a TCP or
unix socket: every request writes one line and reads one reply line, so
the client needs no event loop and embeds anywhere — test harnesses,
CI scripts, ``python -m repro --connect``.  Error replies raise
:class:`~repro.errors.ServiceError` with the server's message and code.

Every connect, read, and write is bounded by a timeout: a frozen or dead
daemon surfaces as :class:`~repro.errors.ServiceUnavailableError` instead
of a hang.  With ``retries > 0`` the client also *recovers*: it redials
with exponential backoff, re-opens its sessions with ``resume`` (the
daemon restores them — live, or from its durability directory after a
crash), and re-sends the interrupted request.  Appends carry client-side
sequence numbers, so a re-sent batch the server already journaled and
applied is acknowledged again without being re-applied — resume is
idempotent and no acked operation is ever lost or doubled.

:func:`run_load` is the standing load generator: it builds N independent
observations from the existing workload generator (optionally with a
fault injector), opens N sessions on one connection, and interleaves
their ``append`` frames round-robin — the service's intended traffic
shape — then collects every verdict and the server's stats.  The CI
smoke job and ``benchmarks/bench_service.py`` both drive it.
"""

from __future__ import annotations

import random
import socket
import time
import uuid
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..db import INJECTORS, Isolation
from ..errors import ServiceError, ServiceUnavailableError
from ..generator import RunConfig, WorkloadConfig, run_workload
from ..history.ops import Op
from ..obs import percentiles
from .protocol import decode_frame, encode_frame, encode_ops

#: Append round-trip latencies retained for the client metrics snapshot.
APPEND_LATENCY_WINDOW = 1024

Address = Union[str, Tuple[str, int]]


def retry_delay(
    rng: random.Random, base: float, previous: float, cap: float
) -> float:
    """One decorrelated-jitter backoff step.

    ``uniform(base, previous * 3)`` capped at ``cap`` — the classic
    decorrelated jitter: the next delay is drawn from a window that grows
    with the previous one, so a fleet of clients that all lost the same
    daemon spreads its redials across time instead of thundering back in
    synchronized exponential waves.
    """
    return min(cap, rng.uniform(base, max(base, previous * 3)))


def parse_address(text: str) -> Address:
    """``HOST:PORT`` or ``unix:PATH`` into a connectable address."""
    if text.startswith("unix:"):
        return text  # kept verbatim; connect() strips the scheme
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ServiceError(
            f"bad address {text!r}; expected HOST:PORT or unix:PATH"
        )
    return (host or "127.0.0.1", int(port))


class _SessionState:
    """Client-side resume bookkeeping for one open session."""

    __slots__ = ("open_frame", "next_seq")

    def __init__(self, open_frame: Dict[str, Any]) -> None:
        self.open_frame = open_frame
        self.next_seq = 1  # sequence number the next append will carry


class ServiceClient:
    """A lockstep connection to a running checker daemon.

    ``timeout`` bounds every connect, write, and reply read; expiry (or a
    refused/reset/closed connection) raises
    :class:`~repro.errors.ServiceUnavailableError`.  ``retries`` is how
    many times one request may redial after such a failure — the default
    0 keeps the historical fail-fast behavior; chaos-facing callers pass
    e.g. ``retries=5`` and survive a daemon ``kill -9`` mid-stream.
    ``backoff`` is the base retry delay; each retry sleeps a
    decorrelated-jitter draw (see :func:`retry_delay`) capped at
    ``max_backoff``, so many clients redialing the same daemon spread
    out instead of thundering.  A structured ``overloaded`` reply (the
    daemon shed the request under memory pressure) is also retried, and
    its server-suggested ``retry_after`` takes precedence over the local
    backoff.  ``rng`` injects the jitter source (tests seed it).
    """

    # Telemetry counters default at class level so partially constructed
    # clients (tests build them via ``__new__``) still count correctly;
    # augmented assignment rebinds them per instance.
    _connects = 0
    _requests = 0
    _retries = 0
    _sessions_resumed = 0
    _backoff_seconds = 0.0
    _appends = 0
    _append_ms: Optional[deque] = None

    def __init__(
        self,
        address: Address,
        timeout: float = 60.0,
        *,
        retries: int = 0,
        backoff: float = 0.2,
        max_backoff: float = 5.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if isinstance(address, str):
            address = parse_address(address)
        self.address: Address = address
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._rng = rng if rng is not None else random.Random()
        self._sock: Optional[socket.socket] = None
        self._fh = None
        self._sessions: Dict[str, _SessionState] = {}
        self._append_ms = deque(maxlen=APPEND_LATENCY_WINDOW)
        self._connect()

    # ------------------------------------------------------------------
    # Transport

    def _connect(self) -> None:
        try:
            if isinstance(self.address, str):  # "unix:PATH", kept verbatim
                scheme = len("unix:")
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.address[scheme:])
            else:
                sock = socket.create_connection(
                    self.address, timeout=self.timeout
                )
        except (OSError, socket.timeout) as exc:
            raise ServiceUnavailableError(
                f"cannot connect to {self.address!r}: {exc}"
            ) from None
        self._sock = sock
        self._fh = sock.makefile("rwb")
        self._connects += 1

    def _drop_connection(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _exchange(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """One raw round trip.  Transport failure drops the connection and
        raises :class:`ServiceUnavailableError`; a structured error reply
        raises :class:`ServiceError` (the connection stays good)."""
        if self._fh is None:
            self._connect()
            self._resume_sessions()
        try:
            self._fh.write(encode_frame(frame))
            self._fh.flush()
            line = self._fh.readline()
        except socket.timeout:
            self._drop_connection()
            raise ServiceUnavailableError(
                f"request timed out after {self.timeout}s "
                "(daemon frozen or unreachable)"
            ) from None
        except (OSError, ValueError) as exc:
            self._drop_connection()
            raise ServiceUnavailableError(
                f"connection to checker service lost: {exc}"
            ) from None
        if not line:
            self._drop_connection()
            raise ServiceUnavailableError(
                "connection closed by server mid-request"
            )
        reply = decode_frame(line)
        if reply.get("type") == "error":
            raise ServiceError(
                reply.get("error", "unknown service error"),
                code=reply.get("code"),
                retry_after=reply.get("retry_after"),
            )
        return reply

    def _resume_sessions(self) -> None:
        """Re-attach every tracked session on a fresh connection.

        ``resume: true`` makes the re-open idempotent: the daemon attaches
        to a live session, restores an evicted/crashed one from disk, or
        creates it fresh — and its ``applied_seq`` reply tells us which
        appends it has already durably applied, so the pending re-send in
        :meth:`request` dedupes instead of doubling.
        """
        for state in self._sessions.values():
            reply = self._exchange(state.open_frame)
            applied = reply.get("applied_seq", 0)
            state.next_seq = max(state.next_seq, applied + 1)
            self._sessions_resumed += 1

    # ------------------------------------------------------------------

    def request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame, await its reply; error replies raise.

        Retries transport failures (up to ``self.retries`` times, with
        decorrelated-jitter backoff) by reconnecting, resuming every open
        session, and re-sending this frame verbatim.  Appends are safe to
        re-send because they carry sequence numbers; the other frames are
        read-only or idempotent by construction.  Structured
        ``overloaded`` replies retry too, sleeping the server-suggested
        ``retry_after`` when one is given.
        """
        attempt = 0
        delay = self.backoff
        self._requests += 1
        while True:
            try:
                return self._exchange(frame)
            except ServiceUnavailableError:
                if attempt >= self.retries:
                    raise
                delay = retry_delay(
                    self._rng, self.backoff, delay, self.max_backoff
                )
                attempt += 1
                self._retries += 1
                self._backoff_seconds += delay
                time.sleep(delay)
            except ServiceError as exc:
                if exc.code != "overloaded" or attempt >= self.retries:
                    raise
                delay = retry_delay(
                    self._rng, self.backoff, delay, self.max_backoff
                )
                attempt += 1
                self._retries += 1
                sleep_for = (
                    exc.retry_after if exc.retry_after is not None else delay
                )
                self._backoff_seconds += sleep_for
                time.sleep(sleep_for)

    def open_session(
        self,
        session_id: Optional[str] = None,
        workload: str = "list-append",
        consistency_model: str = "serializable",
        chunk_ops: Optional[int] = None,
        timestamp_edges: bool = False,
        options: Optional[Dict[str, Any]] = None,
        resume: Optional[bool] = None,
        fresh: bool = False,
        max_ops: Optional[int] = None,
        max_analyze_seconds: Optional[float] = None,
        retire_idle_txns: int = 0,
    ) -> str:
        """Open (or, with ``resume``, re-attach) a checking session.

        ``resume`` defaults to on exactly when the client retries: a
        retried ``open`` whose first ack was lost must not fail as a
        duplicate.  ``fresh=True`` asks a durable daemon to discard any
        on-disk state under this id first.
        """
        if resume is None:
            resume = self.retries > 0
        frame: Dict[str, Any] = {
            "type": "open",
            "session": session_id or f"c-{uuid.uuid4().hex[:12]}",
            "workload": workload,
            "model": consistency_model,
            "timestamp_edges": timestamp_edges,
        }
        if chunk_ops is not None:
            frame["chunk"] = chunk_ops
        if options:
            frame["options"] = options
        if max_ops is not None:
            frame["max_ops"] = max_ops
        if max_analyze_seconds is not None:
            frame["max_analyze_seconds"] = max_analyze_seconds
        if retire_idle_txns:
            frame["retire_idle_txns"] = retire_idle_txns
        if resume:
            frame["resume"] = True
        if fresh:
            frame["fresh"] = True
        reply = self.request(frame)
        opened = reply["session"]
        # Track for reconnect: later resumes must not wipe state again.
        reopen = dict(frame, session=opened, resume=True)
        reopen.pop("fresh", None)
        state = _SessionState(reopen)
        state.next_seq = reply.get("applied_seq", 0) + 1
        self._sessions[opened] = state
        return opened

    def append(self, session_id: str, ops: Sequence[Op]) -> Dict[str, Any]:
        frame: Dict[str, Any] = {
            "type": "append",
            "session": session_id,
            "ops": encode_ops(ops),
        }
        state = self._sessions.get(session_id)
        if state is not None:
            frame["seq"] = state.next_seq
        begin = time.perf_counter()
        reply = self.request(frame)
        if self._append_ms is None:
            self._append_ms = deque(maxlen=APPEND_LATENCY_WINDOW)
        self._append_ms.append((time.perf_counter() - begin) * 1000.0)
        self._appends += 1
        if state is not None:
            state.next_seq = reply.get("applied_seq", state.next_seq) + 1
        return reply

    def verdict(self, session_id: str, report: bool = False) -> Dict[str, Any]:
        return self.request({
            "type": "verdict",
            "session": session_id,
            "report": bool(report),
        })

    def ping(self) -> Dict[str, Any]:
        """The ``ping`` health frame: liveness plus load at a glance."""
        return self.request({"type": "ping"})

    def stats(self, session_id: Optional[str] = None) -> Dict[str, Any]:
        frame: Dict[str, Any] = {"type": "stats"}
        if session_id is not None:
            frame["session"] = session_id
        return self.request(frame)

    def close_session(self, session_id: str) -> Dict[str, Any]:
        self._sessions.pop(session_id, None)
        try:
            return self.request({"type": "close", "session": session_id})
        except ServiceError as exc:
            if self.retries > 0 and exc.code == "unknown-session":
                # The close itself was retried and its first ack lost:
                # the session is gone, which is what we asked for.
                return {"type": "closed", "session": session_id}
            raise

    @property
    def metrics(self) -> Dict[str, Any]:
        """A snapshot of this client's own telemetry.

        ``redials`` counts reconnects after the first dial;
        ``backoff_seconds`` is cumulative sleep across every retry;
        ``append_ms`` is the p50/p95/p99 digest of append round-trip
        latency (request write to reply read — backpressure waits
        included) over the last ``APPEND_LATENCY_WINDOW`` appends.
        """
        return {
            "requests": self._requests,
            "retries": self._retries,
            "redials": max(0, self._connects - 1),
            "sessions_resumed": self._sessions_resumed,
            "backoff_seconds": round(self._backoff_seconds, 4),
            "appends": self._appends,
            "append_ms": {
                name: round(value, 3)
                for name, value in percentiles(
                    self._append_ms or ()
                ).items()
            },
        }

    def close(self) -> None:
        self._sessions.clear()
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Load generation


def session_workload(
    workload: str = "list-append",
    isolation: str = "serializable",
    fault: Optional[str] = None,
    seed: int = 0,
    txns: int = 500,
    concurrency: int = 8,
    active_keys: int = 4,
    max_writes_per_key: Optional[int] = None,
) -> List[Op]:
    """One session's worth of traffic from the simulator, as operations.

    ``max_writes_per_key`` bounds per-key writes so the keyspace rotates
    — the traffic shape that makes settled-prefix retirement
    (``retire_idle_txns``) effective on long-running sessions.
    """
    fault_factory = None
    if fault is not None:
        injector = INJECTORS[fault]

        def fault_factory(rng, _cls=injector):
            return _cls(rng)

    workload_config = (
        WorkloadConfig(
            workload=workload,
            active_keys=active_keys,
            max_writes_per_key=max_writes_per_key,
        )
        if max_writes_per_key is not None
        else WorkloadConfig(workload=workload, active_keys=active_keys)
    )
    history = run_workload(
        RunConfig(
            txns=txns,
            concurrency=concurrency,
            isolation=Isolation(isolation),
            workload=workload_config,
            seed=seed,
            faults=fault_factory,
        )
    )
    return list(history.ops)


def run_load(
    address: Address,
    *,
    sessions: int = 4,
    txns: int = 500,
    workload: str = "list-append",
    isolation: str = "serializable",
    fault: Optional[str] = None,
    consistency_model: str = "serializable",
    seed: int = 0,
    frame_ops: int = 250,
    chunk_ops: int = 1000,
    report: bool = False,
    streams: Optional[Dict[str, Sequence[Op]]] = None,
    timeout: float = 60.0,
    retries: int = 0,
) -> Dict[str, Any]:
    """Drive N interleaved sessions against a daemon; returns the verdicts.

    Each session gets an independent simulated observation (seeds
    ``seed .. seed+N-1``); their ``append`` frames of ``frame_ops``
    operations are interleaved round-robin on one connection, the way
    many concurrent test runs would share one resident checker.  Returns
    per-session verdict records, the server stats, and throughput
    (``ops_per_second`` over the append+verdict phase).

    ``streams`` overrides the generated traffic with pre-built op
    sequences per session name (callers that also batch-check the same
    streams — the benchmark — generate each observation only once).
    """
    if streams is None:
        streams = {
            f"load-{index}": session_workload(
                workload=workload,
                isolation=isolation,
                fault=fault,
                seed=seed + index,
                txns=txns,
            )
            for index in range(sessions)
        }
    else:
        sessions = len(streams)
    with ServiceClient(address, timeout=timeout, retries=retries) as client:
        for name in streams:
            client.open_session(
                session_id=name,
                workload=workload,
                consistency_model=consistency_model,
                chunk_ops=chunk_ops,
            )
        begin = time.perf_counter()
        cursors = {name: 0 for name in streams}
        live = list(streams)
        while live:
            for name in list(live):
                ops = streams[name]
                start = cursors[name]
                if start >= len(ops):
                    live.remove(name)
                    continue
                client.append(name, ops[start:start + frame_ops])
                cursors[name] = start + frame_ops
        verdicts = {
            name: client.verdict(name, report=report) for name in streams
        }
        elapsed = time.perf_counter() - begin
        stats = client.stats()
        client_metrics = client.metrics
        for name in streams:
            client.close_session(name)
    total_ops = sum(len(ops) for ops in streams.values())
    return {
        "sessions": sessions,
        "txns_per_session": txns,
        "ops": total_ops,
        "seconds": elapsed,
        "ops_per_second": total_ops / elapsed if elapsed else float("inf"),
        "verdicts": verdicts,
        "stats": stats,
        "client": client_metrics,
    }
