"""The checker service: one resident daemon, many checking sessions.

Elle's linear-time design makes isolation checking cheap enough to run
continuously against a live system; this package supplies the serving
layer that makes *continuously* practical.  A single asyncio daemon
multiplexes any number of independent checking sessions — each its own
workload, consistency model, and incremental
:class:`~repro.core.incremental.StreamingChecker` — over newline-delimited
JSON frames on TCP or unix sockets, with bounded per-session buffers
(backpressure), bounded analysis slices (fairness), and idle-session
eviction.

Start one::

    python -m repro serve --port 7907

and ship histories to it::

    python -m repro --connect 127.0.0.1:7907 --in history.jsonl

or programmatically::

    from repro.service import ServiceClient
    with ServiceClient(("127.0.0.1", 7907)) as client:
        sid = client.open_session(workload="list-append")
        client.append(sid, ops)
        verdict = client.verdict(sid, report=True)

Every session's verdict is byte-identical to a one-shot batch ``check()``
of the same operations, however its frames interleaved with other
sessions' — pinned by ``tests/properties/test_service_equivalence.py``.

The daemon is watchable end to end (:mod:`repro.obs`): ``--metrics-port``
serves a Prometheus scrape (and the ``metrics`` wire frame), ``--log-json``
streams structured events, and ``--slow-chunk-ms`` dumps per-chunk span
trees for tail-latency forensics — all off the hot path when disabled.
"""

from .client import ServiceClient, parse_address, run_load, session_workload
from .durability import DurabilityManager, SessionStore
from .protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    decode_ops,
    encode_frame,
    encode_ops,
    record_summary,
    update_record,
)
from .server import BackgroundService, CheckerService, serve
from .session import (
    DEFAULT_CHUNK_OPS,
    Session,
    SessionConfig,
    SessionRegistry,
)

__all__ = [
    "BackgroundService",
    "CheckerService",
    "DEFAULT_CHUNK_OPS",
    "DurabilityManager",
    "MAX_FRAME_BYTES",
    "ServiceClient",
    "Session",
    "SessionConfig",
    "SessionRegistry",
    "SessionStore",
    "decode_frame",
    "decode_ops",
    "encode_frame",
    "encode_ops",
    "parse_address",
    "record_summary",
    "run_load",
    "serve",
    "session_workload",
    "update_record",
]
