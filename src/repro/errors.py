"""Exception hierarchy for the repro package."""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class HistoryError(ReproError):
    """An observed history is structurally malformed.

    Raised for problems that make analysis meaningless — completions without
    invocations, operations on the wrong process, unknown micro-op functions.
    Database *misbehavior* (garbage reads, duplicates ...) is never an
    exception; those are reported as anomalies.
    """


class WorkloadError(ReproError):
    """A history mixes micro-ops that a given analyzer cannot interpret."""


class GeneratorError(ReproError):
    """The workload generator was configured inconsistently."""


class ServiceError(ReproError):
    """A checker-service request could not be honored.

    Covers session misuse (unknown, duplicate, closed, or poisoned
    sessions), server-side limits (session table full), and — on the
    client — error replies received from a remote daemon.

    ``code`` is a stable machine-readable identifier carried on the wire
    in error replies (``{"type": "error", "code": ..., "error": ...}``),
    so clients can branch without parsing prose.
    """

    default_code = "service-error"

    def __init__(self, message: str = "", code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code if code is not None else self.default_code


class ProtocolError(ServiceError):
    """A malformed frame on the checker-service wire."""

    default_code = "bad-frame"


class ServiceUnavailableError(ServiceError, ConnectionError):
    """The daemon cannot be reached: connect/read timed out, the
    connection was refused or reset, or the peer closed mid-request.

    Raised by the client instead of hanging on a dead peer; retryable by
    construction — the request was either never delivered or its effect
    is resumable via the sequence-numbered append protocol.  Also a
    :class:`ConnectionError` so callers that caught the raw ``OSError``
    of earlier releases keep working.
    """

    default_code = "unavailable"
