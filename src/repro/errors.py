"""Exception hierarchy for the repro package."""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class HistoryError(ReproError):
    """An observed history is structurally malformed.

    Raised for problems that make analysis meaningless — completions without
    invocations, operations on the wrong process, unknown micro-op functions.
    Database *misbehavior* (garbage reads, duplicates ...) is never an
    exception; those are reported as anomalies.
    """


class WorkloadError(ReproError):
    """A history mixes micro-ops that a given analyzer cannot interpret."""


class RetiredKeyError(WorkloadError):
    """An operation touched a key whose settled prefix was retired.

    Retirement (:meth:`repro.core.incremental.StreamingChecker.retire`)
    drops a key's per-op storage once every transaction that touched it is
    settled; the compact frozen summary cannot absorb new observations on
    the key.  Streams that retire must therefore rotate their keyspace
    (bounded writes per key); a recurrence is reported as this structured
    error — poisoning only the offending session — never as a silently
    wrong verdict.

    ``code`` mirrors :class:`ServiceError` codes so the service can relay
    the condition on the wire without wrapping.
    """

    code = "retired-key"

    def __init__(self, key: object) -> None:
        super().__init__(
            f"key {key!r} was retired; retired keys cannot absorb new "
            "operations (rotate the keyspace or disable retirement)"
        )
        self.key = key


class GeneratorError(ReproError):
    """The workload generator was configured inconsistently."""


class ServiceError(ReproError):
    """A checker-service request could not be honored.

    Covers session misuse (unknown, duplicate, closed, or poisoned
    sessions), server-side limits (session table full), and — on the
    client — error replies received from a remote daemon.

    ``code`` is a stable machine-readable identifier carried on the wire
    in error replies (``{"type": "error", "code": ..., "error": ...}``),
    so clients can branch without parsing prose.  ``retry_after``
    (seconds, optional) rides shed replies — ``code="overloaded"`` — so a
    well-behaved client backs off for the server-suggested interval
    instead of hammering an overloaded daemon.
    """

    default_code = "service-error"

    def __init__(
        self,
        message: str = "",
        code: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code if code is not None else self.default_code
        self.retry_after = retry_after


class ProtocolError(ServiceError):
    """A malformed frame on the checker-service wire."""

    default_code = "bad-frame"


class ServiceUnavailableError(ServiceError, ConnectionError):
    """The daemon cannot be reached: connect/read timed out, the
    connection was refused or reset, or the peer closed mid-request.

    Raised by the client instead of hanging on a dead peer; retryable by
    construction — the request was either never delivered or its effect
    is resumable via the sequence-numbered append protocol.  Also a
    :class:`ConnectionError` so callers that caught the raw ``OSError``
    of earlier releases keep working.
    """

    default_code = "unavailable"
