"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class HistoryError(ReproError):
    """An observed history is structurally malformed.

    Raised for problems that make analysis meaningless — completions without
    invocations, operations on the wrong process, unknown micro-op functions.
    Database *misbehavior* (garbage reads, duplicates ...) is never an
    exception; those are reported as anomalies.
    """


class WorkloadError(ReproError):
    """A history mixes micro-ops that a given analyzer cannot interpret."""


class GeneratorError(ReproError):
    """The workload generator was configured inconsistently."""


class ServiceError(ReproError):
    """A checker-service request could not be honored.

    Covers session misuse (unknown, duplicate, closed, or poisoned
    sessions), server-side limits (session table full), and — on the
    client — error replies received from a remote daemon.
    """


class ProtocolError(ServiceError):
    """A malformed frame on the checker-service wire."""
