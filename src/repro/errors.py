"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class HistoryError(ReproError):
    """An observed history is structurally malformed.

    Raised for problems that make analysis meaningless — completions without
    invocations, operations on the wrong process, unknown micro-op functions.
    Database *misbehavior* (garbage reads, duplicates ...) is never an
    exception; those are reported as anomalies.
    """


class WorkloadError(ReproError):
    """A history mixes micro-ops that a given analyzer cannot interpret."""


class GeneratorError(ReproError):
    """The workload generator was configured inconsistently."""
