"""Graphviz DOT rendering for dependency graphs and cycles.

The paper's Figure 3 plots an anomalous cycle with edges labeled by their
dependency kinds (``wr``, ``rw``, ``rt`` ...).  These helpers produce the
equivalent DOT text; any Graphviz install can turn it into the figure.
Rendering is deliberately dependency-free — output is just a string.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from .digraph import ALL_EDGES, LabeledDiGraph, Node


def _label_names(label: int, names: Dict[int, str]) -> str:
    """Comma-joined names for every bit set in ``label``."""
    parts = [name for bit, name in sorted(names.items()) if label & bit]
    if not parts:
        parts = [f"0x{label:x}"]
    return ",".join(parts)


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def graph_to_dot(
    graph: LabeledDiGraph,
    edge_names: Dict[int, str],
    node_label: Optional[Callable[[Node], str]] = None,
    mask: int = ALL_EDGES,
    name: str = "deps",
) -> str:
    """Render ``graph`` (restricted to ``mask``) as a DOT digraph string."""
    if node_label is None:
        node_label = str
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box];"]
    for node in sorted(graph.nodes(), key=repr):
        lines.append(f"  {_quote(str(node))} [label={_quote(node_label(node))}];")
    edge_key = lambda e: (repr(e[0]), repr(e[1]))  # noqa: E731
    for u, v, label in sorted(graph.edges(mask), key=edge_key):
        text = _label_names(label & mask, edge_names)
        lines.append(f"  {_quote(str(u))} -> {_quote(str(v))} [label={_quote(text)}];")
    lines.append("}")
    return "\n".join(lines)


def cycle_to_dot(
    graph: LabeledDiGraph,
    cycle: Sequence[Node],
    edge_names: Dict[int, str],
    node_label: Optional[Callable[[Node], str]] = None,
    name: str = "cycle",
) -> str:
    """Render just the transactions and edges of one cycle, Figure-3 style."""
    if node_label is None:
        node_label = str
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box];"]
    seen = []
    for node in cycle[:-1]:
        if node not in seen:
            seen.append(node)
            lines.append(
                f"  {_quote(str(node))} [label={_quote(node_label(node))}];"
            )
    for i in range(len(cycle) - 1):
        u, v = cycle[i], cycle[i + 1]
        text = _label_names(graph.edge_label(u, v), edge_names)
        lines.append(f"  {_quote(str(u))} -> {_quote(str(v))} [label={_quote(text)}];")
    lines.append("}")
    return "\n".join(lines)
