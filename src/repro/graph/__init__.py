"""Graph substrate: labeled digraphs, SCCs, cycle searches, interval orders.

This package is Elle's graph-theoretic machine room.  It knows nothing about
transactions or isolation levels — it deals in hashable nodes and integer
edge bitmasks.  The :mod:`repro.core` package assigns meaning to the bits.
"""

from .cycles import (
    Cycle,
    cycle_edge_labels,
    cycle_edges,
    find_cycle,
    find_cycle_with_first_edge,
    find_cycles,
    shortest_cycle_in_component,
    shortest_path,
)
from .csr import CSRGraph
from .digraph import ALL_EDGES, LabeledDiGraph
from .edgelog import EdgeLogGraph
from .dot import cycle_to_dot, graph_to_dot
from .intervals import interval_precedence_edges, interval_precedence_pairs
from .tarjan import cyclic_components, strongly_connected_components

__all__ = [
    "ALL_EDGES",
    "CSRGraph",
    "Cycle",
    "EdgeLogGraph",
    "LabeledDiGraph",
    "cycle_edge_labels",
    "cycle_edges",
    "cycle_to_dot",
    "cyclic_components",
    "find_cycle",
    "find_cycle_with_first_edge",
    "find_cycles",
    "graph_to_dot",
    "interval_precedence_edges",
    "interval_precedence_pairs",
    "shortest_cycle_in_component",
    "shortest_path",
    "strongly_connected_components",
]
