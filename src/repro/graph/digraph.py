"""A directed graph with integer-bitmask edge labels.

Elle's dependency graphs carry several kinds of edges at once — write-write,
write-read, read-write, process, and real-time dependencies — and every cycle
search filters the graph down to a subset of those kinds.  Rather than
materialize filtered copies (expensive for 100k-transaction histories), each
edge stores a single integer whose bits identify the dependency kinds present
between a pair of transactions.  Searches pass a *mask*: an edge is visible to
a traversal iff ``label & mask`` is non-zero.

Nodes may be any hashable value; the checker uses integer transaction ids.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Tuple

from .csr import CSRGraph

#: Mask that admits every edge regardless of label.
ALL_EDGES = -1

Node = Hashable


class LabeledDiGraph:
    """Directed graph whose edges carry an integer bitmask label.

    Adding an edge that already exists ORs the new label into the existing
    one, so multiple dependency kinds between the same pair of transactions
    accumulate onto a single edge.

    :meth:`freeze` snapshots the graph into a :class:`~repro.graph.csr.CSRGraph`
    for the search algorithms; the snapshot is cached until the next
    mutation, so repeated searches over an unchanged graph share one freeze.
    """

    __slots__ = ("_succ", "_pred", "_csr")

    def __init__(self) -> None:
        self._succ: Dict[Node, Dict[Node, int]] = {}
        self._pred: Dict[Node, Dict[Node, int]] = {}
        self._csr: Optional[CSRGraph] = None

    # ------------------------------------------------------------------
    # Construction

    def add_node(self, node: Node) -> None:
        """Ensure ``node`` is present (with no edges if new)."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}
            self._csr = None

    def add_edge(self, u: Node, v: Node, label: int) -> None:
        """Add an edge ``u -> v`` carrying ``label`` (OR-ed into any existing label)."""
        if label == 0:
            raise ValueError("edge label must have at least one bit set")
        succ = self._succ
        pred = self._pred
        if u not in succ:
            succ[u] = {}
            pred[u] = {}
        if v not in succ:
            succ[v] = {}
            pred[v] = {}
        targets = succ[u]
        targets[v] = targets.get(v, 0) | label
        sources = pred[v]
        sources[u] = sources.get(u, 0) | label
        self._csr = None

    def add_edges_from(self, edges: Iterable[Tuple[Node, Node, int]]) -> None:
        """Bulk :meth:`add_edge`, hoisting the per-edge method dispatch."""
        # Invalidate up front: a zero-label ValueError mid-iteration must
        # not leave a pre-mutation snapshot cached over the partial insert.
        self._csr = None
        succ = self._succ
        pred = self._pred
        for u, v, label in edges:
            if label == 0:
                raise ValueError("edge label must have at least one bit set")
            if u not in succ:
                succ[u] = {}
                pred[u] = {}
            if v not in succ:
                succ[v] = {}
                pred[v] = {}
            targets = succ[u]
            targets[v] = targets.get(v, 0) | label
            sources = pred[v]
            sources[u] = sources.get(u, 0) | label

    def union(self, other: "LabeledDiGraph") -> "LabeledDiGraph":
        """Merge ``other``'s nodes and edges into this graph; returns self.

        Merges whole successor/predecessor rows at a time instead of
        re-dispatching :meth:`add_edge` per edge — analyzers union several
        per-key graphs, so this path is warm.
        """
        succ = self._succ
        pred = self._pred
        for node in other._succ:
            if node not in succ:
                succ[node] = {}
                pred[node] = {}
        for u, targets in other._succ.items():
            if not targets:
                continue
            mine = succ[u]
            if mine:
                get = mine.get
                for v, label in targets.items():
                    mine[v] = get(v, 0) | label
            else:
                mine.update(targets)
        for v, sources in other._pred.items():
            if not sources:
                continue
            mine = pred[v]
            if mine:
                get = mine.get
                for u, label in sources.items():
                    mine[u] = get(u, 0) | label
            else:
                mine.update(sources)
        self._csr = None
        return self

    def copy(self) -> "LabeledDiGraph":
        g = LabeledDiGraph()
        for node in self._succ:
            g.add_node(node)
        for u, targets in self._succ.items():
            succ = g._succ[u]
            for v, label in targets.items():
                succ[v] = label
                g._pred[v][u] = label
        return g

    # ------------------------------------------------------------------
    # Freezing

    def freeze(self) -> CSRGraph:
        """An integer-indexed CSR snapshot of the current graph.

        Cached: repeated calls between mutations return the same snapshot,
        so every search pass in a cycle hunt shares one freeze.
        """
        csr = self._csr
        if csr is None:
            csr = self._csr = CSRGraph.from_digraph(self)
        return csr

    # ------------------------------------------------------------------
    # Queries

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    @property
    def node_count(self) -> int:
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        return sum(len(t) for t in self._succ.values())

    def nodes(self) -> Iterator[Node]:
        return iter(self._succ)

    def edge_label(self, u: Node, v: Node) -> int:
        """The bitmask on edge ``u -> v``, or 0 if absent."""
        targets = self._succ.get(u)
        if targets is None:
            return 0
        return targets.get(v, 0)

    def has_edge(self, u: Node, v: Node, mask: int = ALL_EDGES) -> bool:
        return bool(self.edge_label(u, v) & mask)

    def successors(self, u: Node, mask: int = ALL_EDGES) -> Iterator[Node]:
        """Nodes ``v`` with an edge ``u -> v`` visible under ``mask``."""
        targets = self._succ.get(u)
        if not targets:
            return iter(())
        if mask == ALL_EDGES:
            return iter(targets)
        return (v for v, label in targets.items() if label & mask)

    def predecessors(self, v: Node, mask: int = ALL_EDGES) -> Iterator[Node]:
        sources = self._pred.get(v)
        if not sources:
            return iter(())
        if mask == ALL_EDGES:
            return iter(sources)
        return (u for u, label in sources.items() if label & mask)

    def out_edges(self, u: Node, mask: int = ALL_EDGES) -> Iterator[Tuple[Node, int]]:
        """``(v, label)`` pairs for edges leaving ``u`` visible under ``mask``."""
        targets = self._succ.get(u)
        if not targets:
            return iter(())
        return ((v, label) for v, label in targets.items() if label & mask)

    def edges(self, mask: int = ALL_EDGES) -> Iterator[Tuple[Node, Node, int]]:
        """All ``(u, v, label)`` triples visible under ``mask``."""
        for u, targets in self._succ.items():
            for v, label in targets.items():
                if label & mask:
                    yield u, v, label

    def out_degree(self, u: Node, mask: int = ALL_EDGES) -> int:
        return sum(1 for _ in self.successors(u, mask))

    def in_degree(self, v: Node, mask: int = ALL_EDGES) -> int:
        return sum(1 for _ in self.predecessors(v, mask))

    # ------------------------------------------------------------------
    # Derived graphs

    def filter_edges(self, mask: int) -> "LabeledDiGraph":
        """A new graph containing only edges visible under ``mask``.

        Labels are intersected with the mask.  Nodes are preserved even when
        they lose all edges, so SCC results stay comparable.
        """
        g = LabeledDiGraph()
        for node in self._succ:
            g.add_node(node)
        for u, targets in self._succ.items():
            for v, label in targets.items():
                kept = label & mask
                if kept:
                    g._succ[u][v] = kept
                    g._pred[v][u] = kept
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LabeledDiGraph(nodes={self.node_count}, edges={self.edge_count})"
        )
