"""Iterative Tarjan strongly-connected-components over the CSR core.

Elle's cycle detection starts from SCCs (§6 of the paper): any cycle lives
entirely inside one strongly connected component, so we find the components
first and only then run the (more expensive) shortest-cycle searches inside
each.  Tarjan's algorithm is linear in nodes + edges [Tarjan 1971].

The traversal itself lives in :meth:`repro.graph.csr.CSRGraph.scc_idx`: the
graph is frozen once into flat integer arrays (cached on the digraph) and
the recursion is unrolled into an explicit stack — real Jepsen histories
produce graphs with hundreds of thousands of nodes, far beyond Python's
recursion limit.  The functions here keep the historical node-domain API:
they accept a :class:`LabeledDiGraph` (or an already-frozen
:class:`CSRGraph`) and return components of original nodes, in exactly the
order the dict-based implementation produced.
"""

from __future__ import annotations

from typing import Iterable, List, Union

from .csr import CSRGraph
from .digraph import ALL_EDGES, LabeledDiGraph, Node

GraphLike = Union[LabeledDiGraph, CSRGraph]


def _as_csr(graph: GraphLike) -> CSRGraph:
    if isinstance(graph, CSRGraph):
        return graph
    return graph.freeze()


def strongly_connected_components(
    graph: GraphLike, mask: int = ALL_EDGES
) -> List[List[Node]]:
    """All strongly connected components of ``graph`` under ``mask``.

    Returns a list of components, each a list of nodes.  Components are
    maximal; every node appears in exactly one.  Order follows reverse
    topological order of the condensation (a property of Tarjan's algorithm).
    """
    csr = _as_csr(graph)
    nodes = csr.nodes
    return [
        [nodes[i] for i in component] for component in csr.scc_idx(mask)
    ]


def cyclic_components(
    graph: GraphLike, mask: int = ALL_EDGES
) -> List[List[Node]]:
    """SCCs that can contain a cycle: size > 1, or a single self-looping node."""
    csr = _as_csr(graph)
    nodes = csr.nodes
    return [
        [nodes[i] for i in component]
        for component in csr.cyclic_scc_idx(mask)
    ]


def condensation_order(components: Iterable[List[Node]]) -> List[List[Node]]:
    """Components sorted deterministically (by smallest member's repr)."""
    return sorted(components, key=lambda c: sorted(map(repr, c))[0])
