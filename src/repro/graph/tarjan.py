"""Iterative Tarjan strongly-connected-components.

Elle's cycle detection starts from SCCs (§6 of the paper): any cycle lives
entirely inside one strongly connected component, so we find the components
first and only then run the (more expensive) shortest-cycle searches inside
each.  Tarjan's algorithm is linear in nodes + edges [Tarjan 1971].

The recursion is unrolled into an explicit stack: real Jepsen histories
produce graphs with hundreds of thousands of nodes, far beyond Python's
recursion limit.
"""

from __future__ import annotations

from typing import Iterable, List

from .digraph import ALL_EDGES, LabeledDiGraph, Node


def strongly_connected_components(
    graph: LabeledDiGraph, mask: int = ALL_EDGES
) -> List[List[Node]]:
    """All strongly connected components of ``graph`` under ``mask``.

    Returns a list of components, each a list of nodes.  Components are
    maximal; every node appears in exactly one.  Order follows reverse
    topological order of the condensation (a property of Tarjan's algorithm).
    """
    index_of = {}
    lowlink = {}
    on_stack = set()
    stack: List[Node] = []
    components: List[List[Node]] = []
    counter = 0

    for root in graph.nodes():
        if root in index_of:
            continue
        # Each work item is (node, iterator over successors).
        work = [(root, None)]
        while work:
            node, child_iter = work[-1]
            if child_iter is None:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
                child_iter = graph.successors(node, mask)
                work[-1] = (node, child_iter)

            advanced = False
            for child in child_iter:
                if child not in index_of:
                    work.append((child, None))
                    advanced = True
                    break
                if child in on_stack:
                    if index_of[child] < lowlink[node]:
                        lowlink[node] = index_of[child]
            if advanced:
                continue

            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def cyclic_components(
    graph: LabeledDiGraph, mask: int = ALL_EDGES
) -> List[List[Node]]:
    """SCCs that can contain a cycle: size > 1, or a single self-looping node."""
    result = []
    for component in strongly_connected_components(graph, mask):
        if len(component) > 1:
            result.append(component)
        else:
            node = component[0]
            if graph.has_edge(node, node, mask):
                result.append(component)
    return result


def condensation_order(components: Iterable[List[Node]]) -> List[List[Node]]:
    """Components sorted deterministically (by smallest member's repr)."""
    return sorted(components, key=lambda c: sorted(map(repr, c))[0])
