"""Dense integer-indexed CSR (compressed sparse row) graph core.

:class:`~repro.graph.digraph.LabeledDiGraph` is the right structure for
*building* dependency graphs — analyzers discover edges in arbitrary order
and OR labels together — but a terrible one for *searching* them: every edge
probe hashes an arbitrary node, and every traversal walks dict views.  At
Elle's target scale (§7.5: hundreds of thousands of transactions) the cycle
search runs many Tarjan and BFS passes over the same frozen topology, so
the graph is snapshotted once into flat arrays:

* ``nodes[i]`` — the original node for integer id ``i`` (interning order is
  the digraph's insertion order, keeping traversals deterministic and
  byte-identical to the dict-based implementation they replaced);
* ``indptr`` / ``indices`` / ``labels`` — classic CSR: the out-edges of
  node ``i`` are ``indices[indptr[i]:indptr[i + 1]]`` with bitmask labels
  ``labels[indptr[i]:indptr[i + 1]]``, in successor insertion order.

All algorithms here work in the integer domain and take an edge *mask*: an
edge participates iff ``label & mask`` is non-zero.  Restricted variants
additionally take an ``allowed`` byte table (``allowed[i]`` truthy means
node ``i`` is in play), which is how the cycle search confines narrower
passes to the strongly connected components found under wider masks.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

#: Mask that admits every edge regardless of label.
ALL_EDGES = -1


class CSRGraph:
    """An immutable CSR snapshot of a labeled digraph.

    Build via :meth:`from_digraph` (or ``LabeledDiGraph.freeze()``, which
    caches the snapshot until the next mutation).  Node-domain helpers
    (``edge_label``, ``__contains__``) mirror ``LabeledDiGraph`` so frozen
    graphs can stand in for dict graphs in read-only code paths.
    """

    __slots__ = ("nodes", "index_of", "indptr", "indices", "labels",
                 "label_union")

    def __init__(
        self,
        nodes: List,
        index_of: Dict,
        indptr: List[int],
        indices: List[int],
        labels: List[int],
    ) -> None:
        self.nodes = nodes
        self.index_of = index_of
        self.indptr = indptr
        self.indices = indices
        self.labels = labels
        union = 0
        for label in labels:
            union |= label
        self.label_union = union

    @classmethod
    def from_digraph(cls, graph) -> "CSRGraph":
        """Freeze a :class:`LabeledDiGraph` into CSR arrays.

        Node ids follow the digraph's insertion order; each row's successor
        order is the successor-dict insertion order.  Traversals over the
        snapshot therefore visit nodes and edges in exactly the order the
        dict-based algorithms did.
        """
        succ = graph._succ
        nodes = list(succ)
        index_of = {node: i for i, node in enumerate(nodes)}
        indptr = [0] * (len(nodes) + 1)
        indices: List[int] = []
        labels: List[int] = []
        extend_indices = indices.extend
        extend_labels = labels.extend
        intern = index_of.__getitem__
        pos = 0
        for i, node in enumerate(nodes):
            targets = succ[node]
            if targets:
                pos += len(targets)
                extend_indices(map(intern, targets))
                extend_labels(targets.values())
            indptr[i + 1] = pos
        return cls(nodes, index_of, indptr, indices, labels)

    # ------------------------------------------------------------------
    # Node-domain queries (LabeledDiGraph-compatible subset)

    @property
    def n(self) -> int:
        return len(self.nodes)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.indices)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node) -> bool:
        return node in self.index_of

    def edge_label(self, u, v) -> int:
        """The bitmask on edge ``u -> v`` (node domain), or 0 if absent."""
        ui = self.index_of.get(u)
        vi = self.index_of.get(v)
        if ui is None or vi is None:
            return 0
        return self.edge_label_idx(ui, vi)

    def has_edge(self, u, v, mask: int = ALL_EDGES) -> bool:
        return bool(self.edge_label(u, v) & mask)

    def successors(self, u, mask: int = ALL_EDGES) -> Iterator:
        """Node-domain successor iteration (compatibility helper)."""
        ui = self.index_of.get(u)
        if ui is None:
            return iter(())
        nodes = self.nodes
        indices = self.indices
        labels = self.labels
        return (
            nodes[indices[pos]]
            for pos in range(self.indptr[ui], self.indptr[ui + 1])
            if labels[pos] & mask
        )

    # ------------------------------------------------------------------
    # Integer-domain primitives

    def edge_label_idx(self, u: int, v: int) -> int:
        """The bitmask on edge ``u -> v`` (integer domain), or 0 if absent."""
        indices = self.indices
        for pos in range(self.indptr[u], self.indptr[u + 1]):
            if indices[pos] == v:
                return self.labels[pos]
        return 0

    def intern_many(self, members: Iterable) -> List[int]:
        """Map node-domain values to integer ids, preserving order."""
        intern = self.index_of.__getitem__
        return [intern(m) for m in members]

    def allowed_table(self, members: Iterable[int]) -> bytearray:
        """A byte table with ``table[i] = 1`` for each member index."""
        table = bytearray(len(self.nodes))
        for i in members:
            table[i] = 1
        return table

    # ------------------------------------------------------------------
    # Tarjan strongly connected components

    def scc_idx(
        self,
        mask: int = ALL_EDGES,
        roots: Optional[Sequence[int]] = None,
        allowed: Optional[bytearray] = None,
    ) -> List[List[int]]:
        """Tarjan SCCs over integer ids, unrolled to an explicit stack.

        ``roots`` is the DFS root order (default: every node in interning
        order); ``allowed`` restricts the traversal to a node subset.  With
        defaults the visit order — hence component order *and* member order
        — is identical to the dict-based Tarjan this replaced.  Components
        come out in reverse topological order of the condensation.
        """
        indptr = self.indptr
        indices = self.indices
        labels = self.labels
        n = len(self.nodes)
        index_of = [-1] * n
        lowlink = [0] * n
        on_stack = bytearray(n)
        stack: List[int] = []
        components: List[List[int]] = []
        counter = 0
        if roots is None:
            roots = range(n)
        # Parallel work stacks: the node under visit and its resume position
        # in the CSR row (cheaper than tuples or saved iterators).
        work_node: List[int] = []
        work_pos: List[int] = []
        for root in roots:
            if index_of[root] != -1:
                continue
            index_of[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack[root] = 1
            work_node.append(root)
            work_pos.append(indptr[root])
            while work_node:
                node = work_node[-1]
                pos = work_pos[-1]
                end = indptr[node + 1]
                advanced = False
                node_low = lowlink[node]
                while pos < end:
                    if labels[pos] & mask:
                        child = indices[pos]
                        if allowed is None or allowed[child]:
                            child_index = index_of[child]
                            if child_index == -1:
                                work_pos[-1] = pos + 1
                                index_of[child] = lowlink[child] = counter
                                counter += 1
                                stack.append(child)
                                on_stack[child] = 1
                                work_node.append(child)
                                work_pos.append(indptr[child])
                                advanced = True
                                break
                            if on_stack[child] and child_index < node_low:
                                node_low = child_index
                    pos += 1
                if advanced:
                    lowlink[node] = node_low
                    continue
                lowlink[node] = node_low
                work_node.pop()
                work_pos.pop()
                if work_node:
                    parent = work_node[-1]
                    if node_low < lowlink[parent]:
                        lowlink[parent] = node_low
                if node_low == index_of[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = 0
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
        return components

    def _has_self_loop_idx(self, node: int, mask: int) -> bool:
        indices = self.indices
        labels = self.labels
        for pos in range(self.indptr[node], self.indptr[node + 1]):
            if indices[pos] == node and labels[pos] & mask:
                return True
        return False

    def cyclic_scc_idx(
        self,
        mask: int = ALL_EDGES,
        roots: Optional[Sequence[int]] = None,
        allowed: Optional[bytearray] = None,
    ) -> List[List[int]]:
        """SCCs that can contain a cycle: size > 1, or a self-looping node."""
        result = []
        for component in self.scc_idx(mask, roots, allowed):
            if len(component) > 1:
                result.append(component)
            elif self._has_self_loop_idx(component[0], mask):
                result.append(component)
        return result

    # ------------------------------------------------------------------
    # Breadth-first cycle searches

    def shortest_path_idx(
        self,
        source: int,
        target: int,
        mask: int = ALL_EDGES,
        allowed: Optional[bytearray] = None,
    ) -> Optional[List[int]]:
        """BFS shortest path ``source -> ... -> target`` under ``mask``.

        Successors are scanned in CSR row order (the digraph's insertion
        order), so ties break exactly as the dict BFS did.  When ``source ==
        target`` the path must leave the node and return: the target test
        happens on edge traversal, not on dequeue.
        """
        indptr = self.indptr
        indices = self.indices
        labels = self.labels
        parent: Dict[int, int] = {}
        queue = deque((source,))
        seen = {source}
        seen_add = seen.add
        append = queue.append
        while queue:
            node = queue.popleft()
            for pos in range(indptr[node], indptr[node + 1]):
                if not labels[pos] & mask:
                    continue
                succ = indices[pos]
                if allowed is not None and not allowed[succ]:
                    continue
                if succ == target:
                    path = [target, node]
                    while node != source:
                        node = parent[node]
                        path.append(node)
                    path.reverse()
                    return path
                if succ not in seen:
                    seen_add(succ)
                    parent[succ] = node
                    append(succ)
        return None

    def shortest_cycle_idx(
        self,
        component: Sequence[int],
        mask: int = ALL_EDGES,
        allowed: Optional[bytearray] = None,
    ) -> Optional[List[int]]:
        """The shortest cycle through any member of ``component``.

        ``allowed`` must contain (at least) the component members; when
        omitted a table is built from the component.  Members are scanned in
        the order given, keeping the shortest cycle found; a 2-cycle or
        self-loop stops the scan early since nothing shorter exists.
        """
        if allowed is None:
            allowed = self.allowed_table(component)
        best: Optional[List[int]] = None
        for node in component:
            path = self.shortest_path_idx(node, node, mask, allowed)
            if path is None:
                continue
            if best is None or len(path) < len(best):
                best = path
                if len(best) <= 3:  # self-loop or 2-cycle: minimal possible
                    break
        return best

    def first_edge_cycle_idx(
        self,
        component: Sequence[int],
        first_mask: int,
        rest_mask: int,
        allowed: Optional[bytearray] = None,
    ) -> Optional[List[int]]:
        """A cycle taking exactly one ``first_mask`` edge, then ``rest_mask``.

        For each member ``u`` (in order) and each out-edge ``u -> v``
        matching ``first_mask`` inside the component (CSR row order), BFS
        searches ``v -> u`` using only ``rest_mask`` edges.  When
        ``rest_mask`` excludes the ``first_mask`` bits the result contains
        exactly one first-mask edge — the G-single property.
        """
        if allowed is None:
            allowed = self.allowed_table(component)
        indptr = self.indptr
        indices = self.indices
        labels = self.labels
        for u in component:
            for pos in range(indptr[u], indptr[u + 1]):
                if not labels[pos] & first_mask:
                    continue
                v = indices[pos]
                if not allowed[v]:
                    continue
                if v == u:
                    # Self-loop on the first edge alone forms the cycle.
                    return [u, u]
                path = self.shortest_path_idx(v, u, rest_mask, allowed)
                if path is not None:
                    return [u] + path
        return None

    # ------------------------------------------------------------------

    def to_nodes(self, idx_seq: Sequence[int]) -> List:
        """Map a sequence of integer ids back to their original nodes."""
        nodes = self.nodes
        return [nodes[i] for i in idx_seq]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(nodes={len(self.nodes)}, edges={len(self.indices)})"
