"""Dense integer-indexed CSR (compressed sparse row) graph core.

:class:`~repro.graph.digraph.LabeledDiGraph` is the right structure for
*building* dependency graphs — analyzers discover edges in arbitrary order
and OR labels together — but a terrible one for *searching* them: every edge
probe hashes an arbitrary node, and every traversal walks dict views.  At
Elle's target scale (§7.5: hundreds of thousands of transactions) the cycle
search runs many Tarjan and BFS passes over the same frozen topology, so
the graph is snapshotted once into flat arrays:

* ``nodes[i]`` — the original node for integer id ``i`` (interning order is
  the digraph's insertion order, keeping traversals deterministic and
  byte-identical to the dict-based implementation they replaced);
* ``indptr`` / ``indices`` / ``labels`` — classic CSR: the out-edges of
  node ``i`` are ``indices[indptr[i]:indptr[i + 1]]`` with bitmask labels
  ``labels[indptr[i]:indptr[i + 1]]``, in successor insertion order.

All algorithms here work in the integer domain and take an edge *mask*: an
edge participates iff ``label & mask`` is non-zero.  Restricted variants
additionally take an ``allowed`` byte table (``allowed[i]`` truthy means
node ``i`` is in play), which is how the cycle search confines narrower
passes to the strongly connected components found under wider masks.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

try:  # Optional acceleration; every path below has a pure-Python twin.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the _force flags
    _np = None

#: Mask that admits every edge regardless of label.
ALL_EDGES = -1

#: Below this edge count the pure-Python edge-log build wins (numpy's
#: per-call overhead dominates tiny graphs).  Both builds are byte-identical,
#: so the threshold is purely a performance knob.
_BULK_MIN_EDGES = 512

#: Below this edge count the scipy strongly-connected screen is not worth
#: the array round-trip; the Python Tarjan runs directly.
_FAST_SCC_MIN_EDGES = 8192

# Lazily resolved scipy.sparse handle (None = not probed, False = absent).
_SCIPY_SPARSE = None


def _sparse():
    """``scipy.sparse`` if importable, else ``False`` (probed once)."""
    global _SCIPY_SPARSE
    if _SCIPY_SPARSE is None:
        try:
            from scipy import sparse as sp  # type: ignore

            _SCIPY_SPARSE = sp
        except ImportError:  # pragma: no cover - exercised via _force flags
            _SCIPY_SPARSE = False
    return _SCIPY_SPARSE


class CSRGraph:
    """An immutable CSR snapshot of a labeled digraph.

    Build via :meth:`from_digraph` (or ``LabeledDiGraph.freeze()``, which
    caches the snapshot until the next mutation).  Node-domain helpers
    (``edge_label``, ``__contains__``) mirror ``LabeledDiGraph`` so frozen
    graphs can stand in for dict graphs in read-only code paths.
    """

    __slots__ = ("_nodes", "_nodes_np", "_index_of", "_indptr", "_indices",
                 "_labels", "_n", "_e", "label_union", "_np_arrays")

    def __init__(
        self,
        nodes: List,
        index_of: Optional[Dict],
        indptr: List[int],
        indices: List[int],
        labels: List[int],
        label_union: Optional[int] = None,
    ) -> None:
        self._nodes = nodes
        self._nodes_np = None
        self._index_of = index_of
        self._indptr = indptr
        self._indices = indices
        self._labels = labels
        self._n = len(nodes)
        self._e = len(indices)
        if label_union is None:
            label_union = 0
            for label in labels:
                label_union |= label
        self.label_union = label_union
        #: Cached ``(indptr, indices, labels)`` as numpy arrays, built on
        #: demand by the scipy acyclicity screen (or kept from a bulk build).
        self._np_arrays = None

    @classmethod
    def _from_np(
        cls, nodes_np, indptr_np, indices_np, labels_np, label_union: int
    ) -> "CSRGraph":
        """Wrap a bulk-built numpy CSR; Python lists materialize lazily.

        On a clean history the vectorized acyclicity screen answers the
        whole cycle search from the numpy arrays, so the (costly) int-list
        conversions never happen unless a Python traversal — Tarjan, BFS,
        node-domain queries — actually needs them.
        """
        graph = cls.__new__(cls)
        graph._nodes = None
        graph._nodes_np = nodes_np
        graph._index_of = None
        graph._indptr = None
        graph._indices = None
        graph._labels = None
        graph._n = len(nodes_np)
        graph._e = len(indices_np)
        graph.label_union = label_union
        graph._np_arrays = (indptr_np, indices_np, labels_np)
        return graph

    @property
    def nodes(self) -> List:
        """Interned nodes, id order (materialized lazily from a bulk build)."""
        nodes = self._nodes
        if nodes is None:
            nodes = self._nodes = self._nodes_np.tolist()
        return nodes

    @property
    def indptr(self) -> List[int]:
        indptr = self._indptr
        if indptr is None:
            indptr = self._indptr = self._np_arrays[0].tolist()
        return indptr

    @property
    def indices(self) -> List[int]:
        indices = self._indices
        if indices is None:
            indices = self._indices = self._np_arrays[1].tolist()
        return indices

    @property
    def labels(self) -> List[int]:
        labels = self._labels
        if labels is None:
            labels = self._labels = self._np_arrays[2].tolist()
        return labels

    @property
    def index_of(self) -> Dict:
        """Node -> integer id; built lazily (bulk builds skip it entirely)."""
        index_of = self._index_of
        if index_of is None:
            index_of = self._index_of = {
                node: i for i, node in enumerate(self.nodes)
            }
        return index_of

    @classmethod
    def from_digraph(cls, graph) -> "CSRGraph":
        """Freeze a :class:`LabeledDiGraph` into CSR arrays.

        Node ids follow the digraph's insertion order; each row's successor
        order is the successor-dict insertion order.  Traversals over the
        snapshot therefore visit nodes and edges in exactly the order the
        dict-based algorithms did.
        """
        succ = graph._succ
        nodes = list(succ)
        index_of = {node: i for i, node in enumerate(nodes)}
        indptr = [0] * (len(nodes) + 1)
        indices: List[int] = []
        labels: List[int] = []
        extend_indices = indices.extend
        extend_labels = labels.extend
        intern = index_of.__getitem__
        pos = 0
        for i, node in enumerate(nodes):
            targets = succ[node]
            if targets:
                pos += len(targets)
                extend_indices(map(intern, targets))
                extend_labels(targets.values())
            indptr[i + 1] = pos
        return cls(nodes, index_of, indptr, indices, labels)

    @classmethod
    def from_edge_log(
        cls,
        us: Sequence[int],
        vs: Sequence[int],
        labels: Sequence[int],
    ) -> "CSRGraph":
        """Build a snapshot from a flat, append-ordered edge log.

        The log lists every edge *emission* — the same ``(u, v, label)``
        triple may repeat, and labels for one ``(u, v)`` pair OR together.
        The result is byte-identical to inserting the triples one by one
        into a :class:`LabeledDiGraph` and freezing it: nodes intern in
        first-appearance order over the interleaved ``u0, v0, u1, v1, ...``
        stream, and each row's successors keep first-emission order.

        Large logs take a vectorized numpy path (sort/reduce over flat
        arrays); small logs — and numpy-less installs — use a dict build.
        """
        if _np is not None and len(us) >= _BULK_MIN_EDGES:
            return cls._from_edge_log_np(us, vs, labels)
        return cls._from_edge_log_py(us, vs, labels)

    @classmethod
    def _from_edge_log_py(cls, us, vs, labels) -> "CSRGraph":
        succ: Dict = {}
        for u, v, label in zip(us, vs, labels):
            row = succ.get(u)
            if row is None:
                row = succ[u] = {}
            if v not in succ:
                succ[v] = {}
            row[v] = row.get(v, 0) | label
        nodes = list(succ)
        index_of = {node: i for i, node in enumerate(nodes)}
        indptr = [0] * (len(nodes) + 1)
        indices: List[int] = []
        flat_labels: List[int] = []
        intern = index_of.__getitem__
        pos = 0
        for i, node in enumerate(nodes):
            targets = succ[node]
            if targets:
                pos += len(targets)
                indices.extend(map(intern, targets))
                flat_labels.extend(targets.values())
            indptr[i + 1] = pos
        return cls(nodes, index_of, indptr, indices, flat_labels)

    @classmethod
    def _from_edge_log_np(cls, us, vs, labels) -> "CSRGraph":
        u = _np.asarray(us, dtype=_np.int64)
        v = _np.asarray(vs, dtype=_np.int64)
        lab = _np.asarray(labels, dtype=_np.int64)
        e = len(u)
        # Nodes, in first-appearance order over the interleaved stream.
        interleaved = _np.empty(2 * e, dtype=_np.int64)
        interleaved[0::2] = u
        interleaved[1::2] = v
        lo = int(interleaved.min())
        hi = int(interleaved.max())
        if lo >= 0 and hi < 8 * e + 1024:
            # Dense node domain (transaction ids): two scatters replace the
            # O(n log n) sort inside np.unique.  Fancy assignment keeps the
            # *last* write per repeated index, so assigning in reverse
            # stream order records each node's first appearance.
            first_occ = _np.full(hi + 1, -1, dtype=_np.int64)
            first_occ[interleaved[::-1]] = _np.arange(
                2 * e - 1, -1, -1, dtype=_np.int64
            )
            present = _np.flatnonzero(first_occ >= 0)  # sorted by value
            node_vals = present[_np.argsort(first_occ[present])]
            n = len(node_vals)
            rank = _np.empty(hi + 1, dtype=_np.int64)
            rank[node_vals] = _np.arange(n, dtype=_np.int64)
            uid = rank[u]
            vid = rank[v]
            node_source = node_vals
        else:
            uniq, first = _np.unique(interleaved, return_index=True)
            n = len(uniq)
            order = _np.argsort(first)
            rank = _np.empty(n, dtype=_np.int64)
            rank[order] = _np.arange(n, dtype=_np.int64)
            uid = rank[_np.searchsorted(uniq, u)]
            vid = rank[_np.searchsorted(uniq, v)]
            node_source = uniq[order]
        # Group emissions by (u, v): OR the labels, keep the first emission
        # position (stable sort => the group's minimum stream index).
        pair = uid * n + vid
        by_pair = _np.argsort(pair, kind="stable")
        sorted_pair = pair[by_pair]
        starts_mask = _np.empty(e, dtype=bool)
        starts_mask[0] = True
        _np.not_equal(sorted_pair[1:], sorted_pair[:-1], out=starts_mask[1:])
        starts = _np.flatnonzero(starts_mask)
        pairs = sorted_pair[starts]
        pair_labels = _np.bitwise_or.reduceat(lab[by_pair], starts)
        pair_first = by_pair[starts]
        # CSR rows: sort unique pairs by (source id, first emission).
        src = pairs // n
        dst = pairs - src * n
        row_order = _np.lexsort((pair_first, src))
        indices_np = dst[row_order]
        labels_np = pair_labels[row_order]
        counts = _np.bincount(src, minlength=n)
        indptr_np = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(counts, out=indptr_np[1:])
        return cls._from_np(
            node_source,
            indptr_np,
            indices_np,
            labels_np,
            int(_np.bitwise_or.reduce(lab)) if e else 0,
        )

    # ------------------------------------------------------------------
    # Node-domain queries (LabeledDiGraph-compatible subset)

    @property
    def n(self) -> int:
        return self._n

    @property
    def node_count(self) -> int:
        return self._n

    @property
    def edge_count(self) -> int:
        return self._e

    def __len__(self) -> int:
        return self._n

    def __contains__(self, node) -> bool:
        return node in self.index_of

    def edge_label(self, u, v) -> int:
        """The bitmask on edge ``u -> v`` (node domain), or 0 if absent."""
        ui = self.index_of.get(u)
        vi = self.index_of.get(v)
        if ui is None or vi is None:
            return 0
        return self.edge_label_idx(ui, vi)

    def has_edge(self, u, v, mask: int = ALL_EDGES) -> bool:
        return bool(self.edge_label(u, v) & mask)

    def successors(self, u, mask: int = ALL_EDGES) -> Iterator:
        """Node-domain successor iteration (compatibility helper)."""
        ui = self.index_of.get(u)
        if ui is None:
            return iter(())
        nodes = self.nodes
        indices = self.indices
        labels = self.labels
        return (
            nodes[indices[pos]]
            for pos in range(self.indptr[ui], self.indptr[ui + 1])
            if labels[pos] & mask
        )

    # ------------------------------------------------------------------
    # Integer-domain primitives

    def edge_label_idx(self, u: int, v: int) -> int:
        """The bitmask on edge ``u -> v`` (integer domain), or 0 if absent."""
        indices = self.indices
        for pos in range(self.indptr[u], self.indptr[u + 1]):
            if indices[pos] == v:
                return self.labels[pos]
        return 0

    def intern_many(self, members: Iterable) -> List[int]:
        """Map node-domain values to integer ids, preserving order."""
        intern = self.index_of.__getitem__
        return [intern(m) for m in members]

    def allowed_table(self, members: Iterable[int]) -> bytearray:
        """A byte table with ``table[i] = 1`` for each member index."""
        table = bytearray(self._n)
        for i in members:
            table[i] = 1
        return table

    # ------------------------------------------------------------------
    # Tarjan strongly connected components

    def scc_idx(
        self,
        mask: int = ALL_EDGES,
        roots: Optional[Sequence[int]] = None,
        allowed: Optional[bytearray] = None,
    ) -> List[List[int]]:
        """Tarjan SCCs over integer ids, unrolled to an explicit stack.

        ``roots`` is the DFS root order (default: every node in interning
        order); ``allowed`` restricts the traversal to a node subset.  With
        defaults the visit order — hence component order *and* member order
        — is identical to the dict-based Tarjan this replaced.  Components
        come out in reverse topological order of the condensation.
        """
        indptr = self.indptr
        indices = self.indices
        labels = self.labels
        n = self._n
        index_of = [-1] * n
        lowlink = [0] * n
        on_stack = bytearray(n)
        stack: List[int] = []
        components: List[List[int]] = []
        counter = 0
        if roots is None:
            roots = range(n)
        # Parallel work stacks: the node under visit and its resume position
        # in the CSR row (cheaper than tuples or saved iterators).
        work_node: List[int] = []
        work_pos: List[int] = []
        for root in roots:
            if index_of[root] != -1:
                continue
            index_of[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack[root] = 1
            work_node.append(root)
            work_pos.append(indptr[root])
            while work_node:
                node = work_node[-1]
                pos = work_pos[-1]
                end = indptr[node + 1]
                advanced = False
                node_low = lowlink[node]
                while pos < end:
                    if labels[pos] & mask:
                        child = indices[pos]
                        if allowed is None or allowed[child]:
                            child_index = index_of[child]
                            if child_index == -1:
                                work_pos[-1] = pos + 1
                                index_of[child] = lowlink[child] = counter
                                counter += 1
                                stack.append(child)
                                on_stack[child] = 1
                                work_node.append(child)
                                work_pos.append(indptr[child])
                                advanced = True
                                break
                            if on_stack[child] and child_index < node_low:
                                node_low = child_index
                    pos += 1
                if advanced:
                    lowlink[node] = node_low
                    continue
                lowlink[node] = node_low
                work_node.pop()
                work_pos.pop()
                if work_node:
                    parent = work_node[-1]
                    if node_low < lowlink[parent]:
                        lowlink[parent] = node_low
                if node_low == index_of[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = 0
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
        return components

    def _has_self_loop_idx(self, node: int, mask: int) -> bool:
        indices = self.indices
        labels = self.labels
        for pos in range(self.indptr[node], self.indptr[node + 1]):
            if indices[pos] == node and labels[pos] & mask:
                return True
        return False

    def cyclic_scc_idx(
        self,
        mask: int = ALL_EDGES,
        roots: Optional[Sequence[int]] = None,
        allowed: Optional[bytearray] = None,
    ) -> List[List[int]]:
        """SCCs that can contain a cycle: size > 1, or a self-looping node.

        Full-graph queries on large graphs first run a vectorized
        acyclicity screen (scipy's strongly-connected count): when the
        graph under ``mask`` is provably acyclic — one component per node
        and no self-loop — the answer is ``[]`` with no Python traversal.
        Any other outcome falls through to the Tarjan walk, whose emission
        order downstream witness selection depends on.
        """
        if roots is None and allowed is None and self._provably_acyclic(mask):
            return []
        result = []
        for component in self.scc_idx(mask, roots, allowed):
            if len(component) > 1:
                result.append(component)
            elif self._has_self_loop_idx(component[0], mask):
                result.append(component)
        return result

    def _provably_acyclic(self, mask: int) -> bool:
        """True only when a C-speed screen proves no cycle exists under ``mask``."""
        if _np is None or self._e < _FAST_SCC_MIN_EDGES:
            return False
        sparse = _sparse()
        if not sparse:
            return False
        arrays = self._np_arrays
        if arrays is None:
            arrays = self._np_arrays = (
                _np.asarray(self.indptr, dtype=_np.int64),
                _np.asarray(self.indices, dtype=_np.int64),
                _np.asarray(self.labels, dtype=_np.int64),
            )
        indptr_np, indices_np, labels_np = arrays
        n = self._n
        if mask & self.label_union == self.label_union:
            # Every edge visible: wrap the existing CSR arrays directly.
            matrix = sparse.csr_matrix(
                (
                    _np.ones(len(indices_np), dtype=_np.int8),
                    indices_np,
                    indptr_np,
                ),
                shape=(n, n),
            )
        else:
            keep = (labels_np & mask) != 0
            rows = _np.repeat(
                _np.arange(n, dtype=_np.int64), _np.diff(indptr_np)
            )[keep]
            matrix = sparse.csr_matrix(
                (
                    _np.ones(len(rows), dtype=_np.int8),
                    (rows, indices_np[keep]),
                ),
                shape=(n, n),
            )
        if bool(matrix.diagonal().any()):
            return False  # a self-loop is already a cycle
        from scipy.sparse import csgraph  # local: follows the gate above

        count = csgraph.connected_components(
            matrix, directed=True, connection="strong", return_labels=False
        )
        return int(count) == n

    # ------------------------------------------------------------------
    # Breadth-first cycle searches

    def shortest_path_idx(
        self,
        source: int,
        target: int,
        mask: int = ALL_EDGES,
        allowed: Optional[bytearray] = None,
    ) -> Optional[List[int]]:
        """BFS shortest path ``source -> ... -> target`` under ``mask``.

        Successors are scanned in CSR row order (the digraph's insertion
        order), so ties break exactly as the dict BFS did.  When ``source ==
        target`` the path must leave the node and return: the target test
        happens on edge traversal, not on dequeue.
        """
        indptr = self.indptr
        indices = self.indices
        labels = self.labels
        parent: Dict[int, int] = {}
        queue = deque((source,))
        seen = {source}
        seen_add = seen.add
        append = queue.append
        while queue:
            node = queue.popleft()
            for pos in range(indptr[node], indptr[node + 1]):
                if not labels[pos] & mask:
                    continue
                succ = indices[pos]
                if allowed is not None and not allowed[succ]:
                    continue
                if succ == target:
                    path = [target, node]
                    while node != source:
                        node = parent[node]
                        path.append(node)
                    path.reverse()
                    return path
                if succ not in seen:
                    seen_add(succ)
                    parent[succ] = node
                    append(succ)
        return None

    def shortest_cycle_idx(
        self,
        component: Sequence[int],
        mask: int = ALL_EDGES,
        allowed: Optional[bytearray] = None,
    ) -> Optional[List[int]]:
        """The shortest cycle through any member of ``component``.

        ``allowed`` must contain (at least) the component members; when
        omitted a table is built from the component.  Members are scanned in
        the order given, keeping the shortest cycle found; a 2-cycle or
        self-loop stops the scan early since nothing shorter exists.
        """
        if allowed is None:
            allowed = self.allowed_table(component)
        best: Optional[List[int]] = None
        for node in component:
            path = self.shortest_path_idx(node, node, mask, allowed)
            if path is None:
                continue
            if best is None or len(path) < len(best):
                best = path
                if len(best) <= 3:  # self-loop or 2-cycle: minimal possible
                    break
        return best

    def first_edge_cycle_idx(
        self,
        component: Sequence[int],
        first_mask: int,
        rest_mask: int,
        allowed: Optional[bytearray] = None,
    ) -> Optional[List[int]]:
        """A cycle taking exactly one ``first_mask`` edge, then ``rest_mask``.

        For each member ``u`` (in order) and each out-edge ``u -> v``
        matching ``first_mask`` inside the component (CSR row order), BFS
        searches ``v -> u`` using only ``rest_mask`` edges.  When
        ``rest_mask`` excludes the ``first_mask`` bits the result contains
        exactly one first-mask edge — the G-single property.
        """
        if allowed is None:
            allowed = self.allowed_table(component)
        indptr = self.indptr
        indices = self.indices
        labels = self.labels
        for u in component:
            for pos in range(indptr[u], indptr[u + 1]):
                if not labels[pos] & first_mask:
                    continue
                v = indices[pos]
                if not allowed[v]:
                    continue
                if v == u:
                    # Self-loop on the first edge alone forms the cycle.
                    return [u, u]
                path = self.shortest_path_idx(v, u, rest_mask, allowed)
                if path is not None:
                    return [u] + path
        return None

    # ------------------------------------------------------------------

    def to_nodes(self, idx_seq: Sequence[int]) -> List:
        """Map a sequence of integer ids back to their original nodes."""
        nodes = self.nodes
        return [nodes[i] for i in idx_seq]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(nodes={len(self.nodes)}, edges={len(self.indices)})"
