"""Cycle searches over labeled dependency graphs.

Implements the search strategy from §6 of the paper: Tarjan's algorithm
identifies strongly connected components, then a breadth-first search inside
each component finds a *short* cycle — short cycles make for readable
counterexamples.  Two search shapes cover every anomaly class:

* ``find_cycle`` — any cycle using edges visible under a mask (G0, G1c, and
  the "at least one read-write edge" case of G2 via a required first edge).
* ``find_cycle_with_first_edge`` — a cycle that traverses exactly one edge
  from a designated mask and completes using only edges from another mask.
  This is the paper's G-single search: follow exactly one read-write
  (anti-dependency) edge, then return via write-write / write-read edges.

The traversals run on the integer-indexed CSR snapshot (see
:mod:`repro.graph.csr`); these wrappers translate between original nodes and
integer ids, so callers keep working in the node domain.

Cycles are returned as node lists whose first and last element coincide:
``[t1, t2, t3, t1]``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Union

from .csr import CSRGraph
from .digraph import ALL_EDGES, LabeledDiGraph, Node
from .tarjan import _as_csr

Cycle = List[Node]
GraphLike = Union[LabeledDiGraph, CSRGraph]


def shortest_path(
    graph: GraphLike,
    source: Node,
    target: Node,
    mask: int = ALL_EDGES,
    restrict: Optional[Set[Node]] = None,
) -> Optional[List[Node]]:
    """Breadth-first shortest path ``source -> ... -> target`` under ``mask``.

    ``restrict``, when given, confines the search to a node subset (the SCC
    under examination).  Returns the node list including both endpoints, or
    ``None``.  A direct edge ``source -> target`` yields ``[source, target]``;
    if ``source == target`` the path is a proper cycle of length >= 1 edge.
    """
    csr = _as_csr(graph)
    index_of = csr.index_of
    source_idx = index_of.get(source)
    target_idx = index_of.get(target)
    if source_idx is None or target_idx is None:
        return None
    allowed = None
    if restrict is not None:
        allowed = bytearray(len(csr.nodes))
        for node in restrict:
            i = index_of.get(node)
            if i is not None:
                allowed[i] = 1
    path = csr.shortest_path_idx(source_idx, target_idx, mask, allowed)
    if path is None:
        return None
    return csr.to_nodes(path)


def shortest_cycle_in_component(
    graph: GraphLike,
    component: Sequence[Node],
    mask: int = ALL_EDGES,
) -> Optional[Cycle]:
    """The shortest cycle through any node of ``component`` under ``mask``.

    Scans members in order, BFS-ing from each back to itself, and keeps the
    shortest result.  Stops early on a 2-cycle since nothing shorter exists
    (self-loops are found first, as paths of one edge).
    """
    csr = _as_csr(graph)
    members = csr.intern_many(component)
    cycle = csr.shortest_cycle_idx(members, mask)
    if cycle is None:
        return None
    return csr.to_nodes(cycle)


def find_cycle(graph: GraphLike, mask: int = ALL_EDGES) -> Optional[Cycle]:
    """A single short cycle under ``mask``, or None if the graph is acyclic."""
    csr = _as_csr(graph)
    for component in csr.cyclic_scc_idx(mask):
        cycle = csr.shortest_cycle_idx(component, mask)
        if cycle is not None:
            return csr.to_nodes(cycle)
    return None


def find_cycles(graph: GraphLike, mask: int = ALL_EDGES) -> List[Cycle]:
    """One short cycle per cyclic strongly-connected component."""
    csr = _as_csr(graph)
    cycles = []
    for component in csr.cyclic_scc_idx(mask):
        cycle = csr.shortest_cycle_idx(component, mask)
        if cycle is not None:
            cycles.append(csr.to_nodes(cycle))
    return cycles


def find_cycle_with_first_edge(
    graph: GraphLike,
    first_mask: int,
    rest_mask: int,
    components: Optional[Iterable[Sequence[Node]]] = None,
) -> Optional[Cycle]:
    """A cycle taking exactly one ``first_mask`` edge, then ``rest_mask`` edges.

    Components are discovered over the union mask (a cycle mixing both kinds
    of edges lives in an SCC of the union graph).  For each member ``u`` and
    each edge ``u -> v`` matching ``first_mask`` inside the component, BFS
    searches ``v -> u`` using only ``rest_mask`` edges.  If ``rest_mask``
    excludes ``first_mask`` bits, the resulting cycle contains *exactly one*
    ``first_mask`` edge — the G-single property.
    """
    csr = _as_csr(graph)
    if components is None:
        idx_components: Iterable[Sequence[int]] = csr.cyclic_scc_idx(
            first_mask | rest_mask
        )
    else:
        idx_components = [csr.intern_many(c) for c in components]
    for component in idx_components:
        cycle = csr.first_edge_cycle_idx(component, first_mask, rest_mask)
        if cycle is not None:
            return csr.to_nodes(cycle)
    return None


def cycle_edges(cycle: Sequence[Node]) -> List[tuple]:
    """The ``(u, v)`` pairs traversed by a cycle node-list."""
    return [(cycle[i], cycle[i + 1]) for i in range(len(cycle) - 1)]


def cycle_edge_labels(graph: GraphLike, cycle: Sequence[Node]) -> List[int]:
    """Bitmask labels along a cycle's edges, in traversal order."""
    return [graph.edge_label(u, v) for u, v in cycle_edges(cycle)]
