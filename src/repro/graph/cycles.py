"""Cycle searches over labeled dependency graphs.

Implements the search strategy from §6 of the paper: Tarjan's algorithm
identifies strongly connected components, then a breadth-first search inside
each component finds a *short* cycle — short cycles make for readable
counterexamples.  Two search shapes cover every anomaly class:

* ``find_cycle`` — any cycle using edges visible under a mask (G0, G1c, and
  the "at least one read-write edge" case of G2 via a required first edge).
* ``find_cycle_with_first_edge`` — a cycle that traverses exactly one edge
  from a designated mask and completes using only edges from another mask.
  This is the paper's G-single search: follow exactly one read-write
  (anti-dependency) edge, then return via write-write / write-read edges.

Cycles are returned as node lists whose first and last element coincide:
``[t1, t2, t3, t1]``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Sequence, Set

from .digraph import ALL_EDGES, LabeledDiGraph, Node
from .tarjan import cyclic_components

Cycle = List[Node]


def shortest_path(
    graph: LabeledDiGraph,
    source: Node,
    target: Node,
    mask: int = ALL_EDGES,
    restrict: Optional[Set[Node]] = None,
) -> Optional[List[Node]]:
    """Breadth-first shortest path ``source -> ... -> target`` under ``mask``.

    ``restrict``, when given, confines the search to a node subset (the SCC
    under examination).  Returns the node list including both endpoints, or
    ``None``.  A direct edge ``source -> target`` yields ``[source, target]``;
    if ``source == target`` the path is a proper cycle of length >= 1 edge.
    """
    if source not in graph:
        return None
    parent = {}
    queue = deque([source])
    seen = {source}
    # When source == target we must leave the node and come back, so the
    # target check happens on edge traversal, not on dequeue.
    while queue:
        node = queue.popleft()
        for succ in graph.successors(node, mask):
            if restrict is not None and succ not in restrict:
                continue
            if succ == target:
                path = [target, node]
                while node != source:
                    node = parent[node]
                    path.append(node)
                path.reverse()
                return path
            if succ not in seen:
                seen.add(succ)
                parent[succ] = node
                queue.append(succ)
    return None


def shortest_cycle_in_component(
    graph: LabeledDiGraph,
    component: Sequence[Node],
    mask: int = ALL_EDGES,
) -> Optional[Cycle]:
    """The shortest cycle through any node of ``component`` under ``mask``.

    Scans members in order, BFS-ing from each back to itself, and keeps the
    shortest result.  Stops early on a 2-cycle since nothing shorter exists
    (self-loops are found first, as paths of one edge).
    """
    members = set(component)
    best: Optional[Cycle] = None
    for node in component:
        path = shortest_path(graph, node, node, mask, restrict=members)
        if path is None:
            continue
        if best is None or len(path) < len(best):
            best = path
            if len(best) <= 3:  # self-loop or 2-cycle: minimal possible
                break
    return best


def find_cycle(graph: LabeledDiGraph, mask: int = ALL_EDGES) -> Optional[Cycle]:
    """A single short cycle under ``mask``, or None if the graph is acyclic."""
    for component in cyclic_components(graph, mask):
        cycle = shortest_cycle_in_component(graph, component, mask)
        if cycle is not None:
            return cycle
    return None


def find_cycles(graph: LabeledDiGraph, mask: int = ALL_EDGES) -> List[Cycle]:
    """One short cycle per cyclic strongly-connected component."""
    cycles = []
    for component in cyclic_components(graph, mask):
        cycle = shortest_cycle_in_component(graph, component, mask)
        if cycle is not None:
            cycles.append(cycle)
    return cycles


def find_cycle_with_first_edge(
    graph: LabeledDiGraph,
    first_mask: int,
    rest_mask: int,
    components: Optional[Iterable[Sequence[Node]]] = None,
) -> Optional[Cycle]:
    """A cycle taking exactly one ``first_mask`` edge, then ``rest_mask`` edges.

    Components are discovered over the union mask (a cycle mixing both kinds
    of edges lives in an SCC of the union graph).  For each member ``u`` and
    each edge ``u -> v`` matching ``first_mask`` inside the component, BFS
    searches ``v -> u`` using only ``rest_mask`` edges.  If ``rest_mask``
    excludes ``first_mask`` bits, the resulting cycle contains *exactly one*
    ``first_mask`` edge — the G-single property.
    """
    union = first_mask | rest_mask
    if components is None:
        components = cyclic_components(graph, union)
    for component in components:
        members = set(component)
        for u in component:
            for v, _label in graph.out_edges(u, first_mask):
                if v not in members:
                    continue
                if v == u:
                    # Self-loop on the first edge alone forms the cycle.
                    return [u, u]
                path = shortest_path(graph, v, u, rest_mask, restrict=members)
                if path is not None:
                    return [u] + path
    return None


def cycle_edges(cycle: Sequence[Node]) -> List[tuple]:
    """The ``(u, v)`` pairs traversed by a cycle node-list."""
    return [(cycle[i], cycle[i + 1]) for i in range(len(cycle) - 1)]


def cycle_edge_labels(graph: LabeledDiGraph, cycle: Sequence[Node]) -> List[int]:
    """Bitmask labels along a cycle's edges, in traversal order."""
    return [graph.edge_label(u, v) for u, v in cycle_edges(cycle)]
