"""Transitive reduction of real-time (interval) precedence orders.

A transaction occupies the interval from its invocation to its completion.
Transaction ``a`` real-time-precedes ``b`` when ``a`` completes before ``b``
is invoked.  The full precedence relation is quadratic; §5.1 of the paper
notes that its transitive reduction can be computed in O(n · p) time for
``n`` operations and ``p`` concurrent processes, because each process has at
most one outstanding transaction.

Algorithm: sweep events in time order, maintaining a *frontier* — the
antichain of maximal completed transactions.  When a transaction completes,
it evicts every frontier member that completed before this transaction was
invoked (those are now transitively implied).  When a transaction is
invoked, it gains an edge from every frontier member.  The frontier never
exceeds ``p`` entries, giving the O(n · p) bound.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

Interval = Tuple[Hashable, int, int]  # (id, invoke_time, complete_time)


def interval_precedence_edges(
    intervals: Iterable[Interval],
) -> Iterator[Tuple[Hashable, Hashable]]:
    """Yield transitive-reduction edges of the interval precedence order.

    ``intervals`` are ``(id, invoke, complete)`` with ``invoke < complete``;
    times need only be comparable integers (history indices work).  An edge
    ``(a, b)`` means ``a`` completed before ``b`` invoked, with no third
    transaction fully between them.
    """
    events: List[Tuple[int, int, Hashable, int]] = []
    for ident, invoke, complete in intervals:
        if invoke >= complete:
            raise ValueError(
                f"interval for {ident!r} must have invoke < complete, "
                f"got [{invoke}, {complete}]"
            )
        # Invocations sort before completions at the same timestamp: a
        # completion tied with an invocation is treated as concurrent (no
        # edge), because a false real-time edge could fabricate an anomaly.
        events.append((invoke, 0, ident, invoke, True))
        events.append((complete, 1, ident, invoke, False))
    events.sort(key=lambda e: (e[0], e[1]))

    frontier: Dict[Hashable, int] = {}  # id -> completion time
    for time, _kind, ident, invoke, is_invocation in events:
        if is_invocation:
            for pred in frontier:
                yield pred, ident
        else:
            stale = [
                other
                for other, completed in frontier.items()
                if completed < invoke
            ]
            for other in stale:
                del frontier[other]
            frontier[ident] = time
