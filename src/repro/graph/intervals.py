"""Transitive reduction of real-time (interval) precedence orders.

A transaction occupies the interval from its invocation to its completion.
Transaction ``a`` real-time-precedes ``b`` when ``a`` completes before ``b``
is invoked.  The full precedence relation is quadratic; §5.1 of the paper
notes that its transitive reduction can be computed in O(n · p) time for
``n`` operations and ``p`` concurrent processes, because each process has at
most one outstanding transaction.

Algorithm: sweep events in time order, maintaining a *frontier* — the
antichain of maximal completed transactions.  When a transaction completes,
it evicts every frontier member that completed before this transaction was
invoked (those are now transitively implied).  When a transaction is
invoked, it gains an edge from every frontier member.  The frontier never
exceeds ``p`` entries, giving the O(n · p) bound.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple

try:  # Optional: vectorizes the event sort; the sweep itself is Python.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback branch
    _np = None

Interval = Tuple[Hashable, int, int]  # (id, invoke_time, complete_time)

#: Below this interval count the plain tuple sort beats the numpy round-trip.
_NP_SORT_MIN = 1024


def interval_precedence_pairs(
    ids: Sequence[Hashable],
    invokes: Sequence[int],
    completes: Sequence[int],
) -> Tuple[List[Hashable], List[Hashable]]:
    """Transitive-reduction edges over parallel interval arrays.

    The columnar entry point: takes ``ids[i]`` occupying
    ``[invokes[i], completes[i])`` and returns the precedence edges as two
    parallel endpoint arrays ``(sources, targets)`` — the shape the graph
    edge log ingests without building a tuple per edge.  Emission order is
    identical to :func:`interval_precedence_edges` on the zipped triples.
    """
    m = len(ids)
    for i in range(m):
        if invokes[i] >= completes[i]:
            raise ValueError(
                f"interval for {ids[i]!r} must have invoke < complete, "
                f"got [{invokes[i]}, {completes[i]}]"
            )
    # Event order: by time, invocations before completions at the same
    # timestamp (a completion tied with an invocation is treated as
    # concurrent — no edge — because a false real-time edge could
    # fabricate an anomaly), input position breaking remaining ties.
    # Encoded events are ``j < m`` for invocation of interval ``j`` and
    # ``j - m`` for its completion.
    if _np is not None and m >= _NP_SORT_MIN:
        times = _np.empty(2 * m, dtype=_np.int64)
        times[:m] = invokes
        times[m:] = completes
        kinds = _np.zeros(2 * m, dtype=_np.int8)
        kinds[m:] = 1
        # lexsort is stable and sorts by the last key first: (time, kind),
        # remaining ties by event position — invocations occupy [0, m) in
        # input order, completions [m, 2m), matching the tuple sort below.
        order: Iterable[int] = _np.lexsort((kinds, times)).tolist()
    else:
        events: List[Tuple[int, int, int]] = []
        append_event = events.append
        for i in range(m):
            append_event((invokes[i], 0, i))
            append_event((completes[i], 1, m + i))
        events.sort()
        order = [j for _time, _kind, j in events]

    sources: List[Hashable] = []
    targets: List[Hashable] = []
    extend_sources = sources.extend
    extend_targets = targets.extend
    frontier: Dict[Hashable, int] = {}  # id -> completion time
    for j in order:
        if j < m:
            # Invocation: an edge from every frontier member, in frontier
            # (insertion) order — batched as one extend per event.
            count = len(frontier)
            if count:
                extend_sources(frontier)
                extend_targets([ids[j]] * count)
        else:
            i = j - m
            invoke = invokes[i]
            # Completions are processed in ascending time order, so the
            # frontier's insertion order is ascending completion time and
            # the members to evict (completed before this invocation)
            # form a prefix — the scan stops at the first survivor,
            # making total eviction work linear over the whole sweep.
            stale = []
            for other, completed in frontier.items():
                if completed >= invoke:
                    break
                stale.append(other)
            for other in stale:
                del frontier[other]
            frontier[ids[i]] = completes[i]
    return sources, targets


def interval_precedence_edges(
    intervals: Iterable[Interval],
) -> Iterator[Tuple[Hashable, Hashable]]:
    """Transitive-reduction edges of the interval precedence order.

    ``intervals`` are ``(id, invoke, complete)`` with ``invoke < complete``;
    times need only be comparable integers (history indices work).  An edge
    ``(a, b)`` means ``a`` completed before ``b`` invoked, with no third
    transaction fully between them.  Hot paths use
    :func:`interval_precedence_pairs` directly on parallel arrays.
    """
    ids: List[Hashable] = []
    invokes: List[int] = []
    completes: List[int] = []
    for ident, invoke, complete in intervals:
        ids.append(ident)
        invokes.append(invoke)
        completes.append(complete)
    sources, targets = interval_precedence_pairs(ids, invokes, completes)
    return zip(sources, targets)
