"""Transitive reduction of real-time (interval) precedence orders.

A transaction occupies the interval from its invocation to its completion.
Transaction ``a`` real-time-precedes ``b`` when ``a`` completes before ``b``
is invoked.  The full precedence relation is quadratic; §5.1 of the paper
notes that its transitive reduction can be computed in O(n · p) time for
``n`` operations and ``p`` concurrent processes, because each process has at
most one outstanding transaction.

Algorithm: sweep events in time order, maintaining a *frontier* — the
antichain of maximal completed transactions.  When a transaction completes,
it evicts every frontier member that completed before this transaction was
invoked (those are now transitively implied).  When a transaction is
invoked, it gains an edge from every frontier member.  The frontier never
exceeds ``p`` entries, giving the O(n · p) bound.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, List, Sequence, Tuple

try:  # Optional: closed-form vectorized reduction for large interval sets.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback branch
    _np = None

Interval = Tuple[Hashable, int, int]  # (id, invoke_time, complete_time)

#: Below this interval count the Python sweep beats the numpy round-trip.
_NP_SORT_MIN = 48


def interval_precedence_pairs(
    ids: Sequence[Hashable],
    invokes: Sequence[int],
    completes: Sequence[int],
) -> Tuple[Sequence[Hashable], Sequence[Hashable]]:
    """Transitive-reduction edges over parallel interval arrays.

    The columnar entry point: takes ``ids[i]`` occupying
    ``[invokes[i], completes[i])`` and returns the precedence edges as two
    parallel endpoint arrays ``(sources, targets)`` — the shape the graph
    edge log ingests without building a tuple per edge.  Emission order is
    identical to :func:`interval_precedence_edges` on the zipped triples.
    """
    m = len(ids)
    if _np is not None and m >= _NP_SORT_MIN:
        return _precedence_pairs_np(ids, invokes, completes)
    # Event order: by time, invocations before completions at the same
    # timestamp (a completion tied with an invocation is treated as
    # concurrent — no edge — because a false real-time edge could
    # fabricate an anomaly), input position breaking remaining ties.
    # Encoded events are ``j < m`` for invocation of interval ``j`` and
    # ``j - m`` for its completion.
    for i in range(m):
        if invokes[i] >= completes[i]:
            raise ValueError(
                f"interval for {ids[i]!r} must have invoke < complete, "
                f"got [{invokes[i]}, {completes[i]}]"
            )
    events: List[Tuple[int, int, int]] = []
    append_event = events.append
    for i in range(m):
        append_event((invokes[i], 0, i))
        append_event((completes[i], 1, m + i))
    events.sort()
    order = [j for _time, _kind, j in events]

    sources: List[Hashable] = []
    targets: List[Hashable] = []
    extend_sources = sources.extend
    extend_targets = targets.extend
    # The frontier is the antichain of maximal completed transactions.
    # Completions are processed in ascending time order, so insertion
    # order is ascending completion time and evictions (members completed
    # before the incoming transaction's invocation) always strip a prefix
    # — a flat list with a head cursor beats a dict's delete/insert churn.
    fr_ids: List[Hashable] = []
    fr_completes: List[int] = []
    head = 0
    fr_append = fr_ids.append
    comp_append = fr_completes.append
    for j in order:
        if j < m:
            # Invocation: an edge from every live frontier member, in
            # insertion order — batched as one extend per event.
            count = len(fr_ids) - head
            if count:
                extend_sources(fr_ids[head:])
                extend_targets([ids[j]] * count)
        else:
            i = j - m
            invoke = invokes[i]
            while head < len(fr_ids) and fr_completes[head] < invoke:
                head += 1
            fr_append(ids[i])
            comp_append(completes[i])
    return sources, targets


def _precedence_pairs_np(
    ids: Sequence[Hashable],
    invokes: Sequence[int],
    completes: Sequence[int],
) -> Tuple[Sequence[Hashable], Sequence[Hashable]]:
    """Closed-form vectorization of the frontier sweep.

    The frontier is always a *contiguous window* of completion order:
    members are appended in ascending completion time and evictions strip
    a prefix.  At the invocation of ``b`` the window is ``[head, tail)``
    over completion-sorted intervals, where

    * ``tail(b)`` counts completions strictly before ``invoke(b)``
      (a completion tied with an invocation is processed after it), and
    * ``head(b)`` counts completions strictly before ``M(b)``, the largest
      ``invoke(c)`` over completions ``c`` processed before ``b`` — each
      such completion evicted every member completing before its own
      invocation, and eviction counts are monotone in the threshold, so
      only the maximum matters.  ``M(b) = invoke(c) < complete(c) <
      invoke(b)`` guarantees ``head <= tail``.

    Edges are gathered per invocation in event order (time, then input
    position) with frontier members in insertion (completion) order —
    byte-identical to the sweep's emission sequence.
    """
    m = len(ids)
    inv = _np.asarray(invokes, dtype=_np.int64)
    comp = _np.asarray(completes, dtype=_np.int64)
    bad = _np.flatnonzero(inv >= comp)
    if len(bad):
        i = int(bad[0])
        raise ValueError(
            f"interval for {ids[i]!r} must have invoke < complete, "
            f"got [{invokes[i]}, {completes[i]}]"
        )
    corder = _np.argsort(comp, kind="stable")
    iorder = _np.argsort(inv, kind="stable")
    comp_sorted = comp[corder]
    inv_sorted = inv[iorder]
    tail = _np.searchsorted(comp_sorted, inv_sorted, side="left")
    # Prefix max of invocation times in completion order gives M(b) for
    # the tail(b) completions processed before b.
    prefmax = _np.maximum.accumulate(inv[corder])
    thresh = prefmax[_np.maximum(tail - 1, 0)]
    head = _np.where(
        tail > 0, _np.searchsorted(comp_sorted, thresh, side="left"), 0
    )
    counts = tail - head
    total = int(counts.sum())
    if total == 0:
        return [], []
    # Concatenated window indices: one arange per invocation, offset so
    # each restarts at its own head.
    offsets = _np.cumsum(counts) - counts
    idx = _np.arange(total, dtype=_np.int64) + _np.repeat(
        head - offsets, counts
    )
    src_pos = corder[idx]
    tgt_pos = _np.repeat(iorder, counts)
    ids_arr = _np.asarray(ids)
    if ids_arr.dtype.kind in "iu":
        # Integer ids stay columnar: the edge log ingests these arrays
        # with a buffer copy, no per-edge boxing.
        return ids_arr[src_pos], ids_arr[tgt_pos]
    sources = [ids[i] for i in src_pos.tolist()]
    targets = [ids[i] for i in tgt_pos.tolist()]
    return sources, targets


def interval_precedence_edges(
    intervals: Iterable[Interval],
) -> Iterator[Tuple[Hashable, Hashable]]:
    """Transitive-reduction edges of the interval precedence order.

    ``intervals`` are ``(id, invoke, complete)`` with ``invoke < complete``;
    times need only be comparable integers (history indices work).  An edge
    ``(a, b)`` means ``a`` completed before ``b`` invoked, with no third
    transaction fully between them.  Hot paths use
    :func:`interval_precedence_pairs` directly on parallel arrays.
    """
    ids: List[Hashable] = []
    invokes: List[int] = []
    completes: List[int] = []
    for ident, invoke, complete in intervals:
        ids.append(ident)
        invokes.append(invoke)
        completes.append(complete)
    sources, targets = interval_precedence_pairs(ids, invokes, completes)
    return zip(sources, targets)
