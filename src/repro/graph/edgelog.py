"""An append-only edge log that freezes into a CSR snapshot.

:class:`~repro.graph.digraph.LabeledDiGraph` pays two dict probes and a
read-modify-write per edge *at insertion time* so that queries are cheap at
any moment.  The analysis pipeline doesn't need that: it emits hundreds of
thousands of edges in one deterministic stream, then freezes the graph once
and only reads it afterwards.  :class:`EdgeLogGraph` embraces that shape —
``add_edge`` and friends are list appends, and all the dedup/interning work
happens in one vectorized bulk pass (:meth:`CSRGraph.from_edge_log`) at
freeze time.

The frozen result is byte-identical to inserting the same stream into a
``LabeledDiGraph`` and freezing it: node interning order is first appearance
over the interleaved ``u, v`` stream, successor rows keep first-emission
order, and labels for a repeated pair OR together.  Read-side methods
(``nodes``, ``edges``, ``edge_label``, ``has_edge``) delegate to the cached
snapshot, so the class can stand in for the digraph everywhere the checker
reads the inferred serialization graph.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence, Tuple

from .csr import ALL_EDGES, CSRGraph

try:  # Optional acceleration; every path below has a pure-Python twin.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the no-numpy job
    _np = None


class EdgeLogGraph:
    """A mutable graph optimized for bulk emission then frozen traversal.

    The log lives in three ``array('q')`` columns (64-bit ints), so the
    bulk freeze converts to numpy through the buffer protocol instead of
    walking a list of boxed ints.
    """

    __slots__ = ("_u", "_v", "_l", "_csr")

    def __init__(self) -> None:
        self._u = array("q")
        self._v = array("q")
        self._l = array("q")
        self._csr = None

    # ------------------------------------------------------------------
    # Construction: every path is appends on flat parallel arrays.

    def add_edge(self, u: int, v: int, label: int) -> None:
        """Append one edge emission (labels for a repeated pair OR together)."""
        if label == 0:
            raise ValueError("edge label must have at least one bit set")
        self._u.append(u)
        self._v.append(v)
        self._l.append(label)
        self._csr = None

    def add_edges_from(self, edges: Iterable[Tuple[int, int, int]]) -> None:
        """Bulk :meth:`add_edge` from ``(u, v, label)`` triples."""
        self._csr = None
        append_u = self._u.append
        append_v = self._v.append
        append_l = self._l.append
        for u, v, label in edges:
            if label == 0:
                raise ValueError("edge label must have at least one bit set")
            append_u(u)
            append_v(v)
            append_l(label)

    def add_edge_arrays(
        self, us: Sequence[int], vs: Sequence[int], label: int
    ) -> None:
        """Append parallel endpoint arrays sharing one label (order edges)."""
        if label == 0:
            raise ValueError("edge label must have at least one bit set")
        n = len(us)
        if n == 0:
            return
        self._csr = None
        if _np is not None and isinstance(us, _np.ndarray):
            # numpy int64 shares array('q')'s native 8-byte layout, so the
            # append is a memcpy instead of per-element boxing.
            self._u.frombytes(us.astype(_np.int64, copy=False).tobytes())
            self._v.frombytes(
                _np.asarray(vs).astype(_np.int64, copy=False).tobytes()
            )
        else:
            self._u.extend(us)
            self._v.extend(vs)
        self._l.extend(array("q", [label]) * n)

    def add_edge_columns(
        self, us: "_np.ndarray", vs: "_np.ndarray", labels: "_np.ndarray"
    ) -> None:
        """Append parallel numpy columns with per-edge labels in one memcpy.

        The whole-index analyzer emits its clean-key wr/rw/ww stream here;
        labels are dependency bits, non-zero by construction.
        """
        if len(us) == 0:
            return
        self._csr = None
        if _np is not None and isinstance(us, _np.ndarray):
            self._u.frombytes(us.astype(_np.int64, copy=False).tobytes())
            self._v.frombytes(vs.astype(_np.int64, copy=False).tobytes())
            self._l.frombytes(labels.astype(_np.int64, copy=False).tobytes())
        else:
            self._u.extend(us)
            self._v.extend(vs)
            self._l.extend(labels)

    def add_edge_keys(self, triples: Iterable[Tuple[int, int, int]]) -> None:
        """Append pre-validated ``(u, v, label)`` triples in bulk.

        The analyzer merge path hands whole edge-batch dicts here (a dict
        of ``EdgeKey`` keys iterates as triples); labels are dependency
        bits, already non-zero by construction, so no per-edge validation
        runs.
        """
        triples = list(triples)
        if not triples:
            return
        self._csr = None
        us, vs, ls = zip(*triples)
        self._u.extend(us)
        self._v.extend(vs)
        self._l.extend(ls)

    def union(self, other: "EdgeLogGraph") -> "EdgeLogGraph":
        """Append another log's emissions after this one's; returns self."""
        self._csr = None
        self._u.extend(other._u)
        self._v.extend(other._v)
        self._l.extend(other._l)
        return self

    # ------------------------------------------------------------------
    # Freezing and reads (all reads go through the cached snapshot).

    def freeze(self) -> CSRGraph:
        """The CSR snapshot of the log, cached until the next append."""
        csr = self._csr
        if csr is None:
            csr = self._csr = CSRGraph.from_edge_log(self._u, self._v, self._l)
        return csr

    @property
    def emission_count(self) -> int:
        """Raw log length (emissions, not deduplicated edges)."""
        return len(self._u)

    @property
    def node_count(self) -> int:
        return self.freeze().node_count

    @property
    def edge_count(self) -> int:
        return self.freeze().edge_count

    def __len__(self) -> int:
        return self.node_count

    def __contains__(self, node: int) -> bool:
        return node in self.freeze().index_of

    def nodes(self) -> Iterator[int]:
        """Nodes in interning (first-emission) order."""
        return iter(self.freeze().nodes)

    def edges(self, mask: int = ALL_EDGES) -> Iterator[Tuple[int, int, int]]:
        """All ``(u, v, label)`` triples visible under ``mask``."""
        csr = self.freeze()
        nodes = csr.nodes
        indptr = csr.indptr
        indices = csr.indices
        labels = csr.labels
        for i, node in enumerate(nodes):
            for pos in range(indptr[i], indptr[i + 1]):
                label = labels[pos]
                if label & mask:
                    yield node, nodes[indices[pos]], label

    def edge_label(self, u: int, v: int) -> int:
        return self.freeze().edge_label(u, v)

    def has_edge(self, u: int, v: int, mask: int = ALL_EDGES) -> bool:
        return bool(self.edge_label(u, v) & mask)

    def successors(self, u: int, mask: int = ALL_EDGES) -> Iterator[int]:
        return self.freeze().successors(u, mask)

    def out_degree(self, u: int, mask: int = ALL_EDGES) -> int:
        csr = self.freeze()
        ui = csr.index_of.get(u)
        if ui is None:
            return 0
        labels = csr.labels
        return sum(
            1
            for pos in range(csr.indptr[ui], csr.indptr[ui + 1])
            if labels[pos] & mask
        )

    def in_degree(self, v: int, mask: int = ALL_EDGES) -> int:
        csr = self.freeze()
        vi = csr.index_of.get(v)
        if vi is None:
            return 0
        labels = csr.labels
        return sum(
            1
            for pos, target in enumerate(csr.indices)
            if target == vi and labels[pos] & mask
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EdgeLogGraph({len(self._u)} emissions)"
