"""Random transaction generation (§7).

The paper's tests "generated transactions of varying length (typically 1-10
operations) comprised of random reads and writes over a handful of objects",
with "anywhere from one to 1024 writes per object".  This module mirrors
that: a rotating pool of active keys, uniform read/write mixes, and
globally-unique write arguments so every history is recoverable by
construction.

Generated micro-ops are *invocations*: reads carry ``value=None`` until the
database fills them in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..errors import GeneratorError
from ..history.ops import ADD, APPEND, INCREMENT, WRITE, MicroOp, r

#: Write micro-op function per workload name.
WORKLOAD_WRITE_FNS = {
    "list-append": APPEND,
    "rw-register": WRITE,
    "grow-set": ADD,
    "counter": INCREMENT,
}


@dataclass
class WorkloadConfig:
    """Shape of generated transactions.

    ``active_keys`` is the size of the live key pool; once a key has
    received ``max_writes_per_key`` writes it retires and a fresh key takes
    its place (stressing object-creation paths, as §7 describes).
    """

    workload: str = "list-append"
    active_keys: int = 5
    max_writes_per_key: int = 100
    min_txn_len: int = 1
    max_txn_len: int = 5
    read_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.workload not in WORKLOAD_WRITE_FNS:
            raise GeneratorError(
                f"unknown workload {self.workload!r}; "
                f"known: {sorted(WORKLOAD_WRITE_FNS)}"
            )
        if self.min_txn_len < 1 or self.max_txn_len < self.min_txn_len:
            raise GeneratorError(
                f"bad transaction length range "
                f"[{self.min_txn_len}, {self.max_txn_len}]"
            )
        if not 0.0 <= self.read_fraction <= 1.0:
            raise GeneratorError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )
        if self.active_keys < 1 or self.max_writes_per_key < 1:
            raise GeneratorError("need at least one key and one write per key")


class TransactionGenerator:
    """Produces invocation micro-op lists, managing key rotation and
    argument uniqueness."""

    def __init__(self, config: WorkloadConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng
        self._write_fn = WORKLOAD_WRITE_FNS[config.workload]
        self._next_key = config.active_keys
        self._pool: List[int] = list(range(config.active_keys))
        self._writes_per_key: Dict[int, int] = {}
        self._next_value = 0

    def _fresh_value(self) -> int:
        self._next_value += 1
        return self._next_value

    def _rotate(self, slot: int) -> int:
        key = self._next_key
        self._next_key += 1
        self._pool[slot] = key
        return key

    def next_txn(self) -> List[MicroOp]:
        """One random transaction's invocation micro-ops."""
        cfg = self.config
        length = self.rng.randint(cfg.min_txn_len, cfg.max_txn_len)
        mops: List[MicroOp] = []
        for _ in range(length):
            slot = self.rng.randrange(len(self._pool))
            key = self._pool[slot]
            if self.rng.random() < cfg.read_fraction:
                mops.append(r(key))
                continue
            count = self._writes_per_key.get(key, 0)
            if count >= cfg.max_writes_per_key:
                key = self._rotate(slot)
                count = 0
            self._writes_per_key[key] = count + 1
            if self._write_fn == INCREMENT:
                mops.append(MicroOp(INCREMENT, key, 1))
            else:
                mops.append(MicroOp(self._write_fn, key, self._fresh_value()))
        return mops
