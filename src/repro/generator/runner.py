"""Simulated concurrent clients producing observed histories (§7).

The runner drives ``concurrency`` single-threaded logical processes against
one :class:`~repro.db.MVCCDatabase`.  A seeded scheduler interleaves their
steps — begin, one micro-op at a time, then commit — so histories are both
genuinely concurrent and exactly reproducible.

Client-side faults mirror Jepsen's semantics: with ``crash_probability`` a
commit's outcome is never learned (the operation completes as ``info``) and
the client thread is reincarnated as a fresh logical process, so logical
concurrency grows over time, exactly as §7 describes for fault-injection
tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.objects import model_for
from ..db.mvcc import (
    ConflictAbort,
    FaultInjector,
    Isolation,
    MVCCDatabase,
    WouldBlock,
)
from ..errors import GeneratorError
from ..history import History, HistoryBuilder
from ..history.ops import MicroOp
from .workload import WORKLOAD_WRITE_FNS, TransactionGenerator, WorkloadConfig

FaultFactory = Callable[[random.Random], FaultInjector]


@dataclass
class RunConfig:
    """One simulated test run.

    ``txns`` counts completed transactions (ok, fail, or info).  ``faults``
    is an optional factory building a fault injector from the run's RNG, so
    the whole run stays reproducible from ``seed``.
    """

    txns: int = 1000
    concurrency: int = 10
    isolation: Isolation = Isolation.SERIALIZABLE
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    seed: int = 0
    crash_probability: float = 0.0
    crash_commit_probability: float = 0.5
    abort_probability: float = 0.0
    expose_timestamps: bool = False
    faults: Optional[FaultFactory] = None
    #: More than one site switches to the replicated PSI substrate
    #: (:mod:`repro.db.replicated`); clients stick to ``slot % sites``.
    sites: int = 1
    replication_lag: int = 3

    def __post_init__(self) -> None:
        if self.txns < 0:
            raise GeneratorError("txns must be non-negative")
        if self.concurrency < 1:
            raise GeneratorError("need at least one client")
        for name in ("crash_probability", "abort_probability",
                     "crash_commit_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise GeneratorError(f"{name} must be in [0, 1], got {value}")
        if self.sites < 1:
            raise GeneratorError("need at least one site")
        if self.sites > 1 and self.faults is not None:
            raise GeneratorError(
                "fault injectors apply to the single-site MVCC database; "
                "the replicated substrate models its own weakness (PSI)"
            )


class _Client:
    """One client slot: a logical process with at most one open txn."""

    __slots__ = ("process", "invocation", "executed", "position", "db_txn")

    def __init__(self, process: int) -> None:
        self.process = process
        self.invocation: Optional[List[MicroOp]] = None
        self.executed: List[MicroOp] = []
        self.position = 0
        self.db_txn = None

    @property
    def idle(self) -> bool:
        return self.invocation is None

    def reset(self) -> None:
        self.invocation = None
        self.executed = []
        self.position = 0
        self.db_txn = None


def run_workload(config: RunConfig) -> History:
    """Execute a run; returns the observed history.

    The result is exactly what a client-side observer records: invocations
    with unknown read values, completions carrying observed reads, ``fail``
    for database-refused commits, ``info`` for crashed clients.
    """
    rng = random.Random(config.seed)
    model = model_for(WORKLOAD_WRITE_FNS[config.workload.workload])
    if config.sites > 1:
        from ..db.replicated import ReplicatedDatabase

        db = ReplicatedDatabase(
            model, sites=config.sites, replication_lag=config.replication_lag
        )
    else:
        faults = config.faults(rng) if config.faults else None
        db = MVCCDatabase(model, config.isolation, faults)
    generator = TransactionGenerator(config.workload, rng)
    builder = HistoryBuilder()

    clients = [_Client(process) for process in range(config.concurrency)]
    sites = [slot % config.sites for slot in range(config.concurrency)]
    next_process = config.concurrency
    completed = 0

    while completed < config.txns:
        slot = rng.randrange(len(clients))
        client = clients[slot]
        if client.idle:
            client.invocation = generator.next_txn()
            if config.sites > 1:
                client.db_txn = db.begin(site=sites[slot])
            else:
                client.db_txn = db.begin()
            start_ts = (
                client.db_txn.advertised_start_seq
                if config.expose_timestamps
                else None
            )
            builder.invoke(client.process, client.invocation, ts=start_ts)
            continue

        if client.position < len(client.invocation):
            mop = client.invocation[client.position]
            try:
                client.executed.append(db.execute(client.db_txn, mop))
                client.position += 1
            except WouldBlock:
                pass  # lock held: retry this micro-op on a later step
            except ConflictAbort:
                # Deadlock victim: the database killed the transaction.
                completed += 1
                builder.fail(client.process, None)
                client.reset()
            continue

        # Commit point.
        completed += 1
        if rng.random() < config.abort_probability:
            # Client-initiated rollback.  A correct database discards the
            # transaction's effects; read-uncommitted already leaked them.
            db.abort(client.db_txn)
            builder.fail(client.process, None)
            client.reset()
            continue
        if rng.random() < config.crash_probability:
            if rng.random() < config.crash_commit_probability:
                try:
                    db.commit(client.db_txn)
                except ConflictAbort:
                    pass
            else:
                db.abort(client.db_txn)
            builder.info(client.process, None)
            client.process = next_process  # reincarnate (Jepsen-style)
            next_process += 1
        else:
            try:
                commit_ts = db.commit(client.db_txn)
                builder.ok(
                    client.process,
                    client.executed,
                    ts=commit_ts if config.expose_timestamps else None,
                )
            except ConflictAbort:
                builder.fail(client.process, None)
        client.reset()

    # Close out in-flight transactions as indeterminate.
    return builder.build()
