"""Random transactional workloads and simulated concurrent clients."""

from .runner import RunConfig, run_workload
from .workload import WORKLOAD_WRITE_FNS, TransactionGenerator, WorkloadConfig

__all__ = [
    "RunConfig",
    "TransactionGenerator",
    "WORKLOAD_WRITE_FNS",
    "WorkloadConfig",
    "run_workload",
]
