"""Canonical example histories from the paper, reusable across
tests, examples, and benchmarks.

Each function returns ``(history, names)`` where ``names`` maps the paper's
transaction labels (``"T1"`` ...) to transaction ids in the history.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .history import History, HistoryBuilder, append, r

_FIG4_CACHE: Dict[Tuple[int, int, int, str, int], History] = {}


def figure4_history(
    length: int,
    concurrency: int,
    seed: int = 42,
    workload: str = "list-append",
    active_keys: int = 100,
    max_writes_per_key: int = 100,
) -> History:
    """A serializable history in the Figure 4 configuration (§7.5).

    100 active keys by default, up to 100 writes per key, transactions of
    1-5 operations, run against the serializable MVCC simulator.
    ``workload`` selects the datatype (the paper's scale experiment used
    list-append; the rw-register benchmark reuses the same shape), and the
    key knobs reshape the keyspace (lowering ``max_writes_per_key``
    multiplies the number of distinct keys the run touches).  Results are
    cached per configuration: benchmarks reuse them freely.
    """
    from .db import Isolation
    from .generator import RunConfig, WorkloadConfig, run_workload

    key = (length, concurrency, seed, workload, active_keys, max_writes_per_key)
    if key not in _FIG4_CACHE:
        _FIG4_CACHE[key] = run_workload(
            RunConfig(
                txns=length,
                concurrency=concurrency,
                isolation=Isolation.SERIALIZABLE,
                workload=WorkloadConfig(
                    workload=workload,
                    active_keys=active_keys,
                    max_writes_per_key=max_writes_per_key,
                    max_txn_len=5,
                ),
                seed=seed,
            )
        )
    return _FIG4_CACHE[key]


def figure2_history() -> Tuple[History, Dict[str, int]]:
    """The Figure 2 / Figure 3 history: a real-time G-single cycle.

    Three transactions over keys 250–256:

    * T1 missed T2's append of 8 to key 255 (anti-dependency T1 -> T2),
    * T3 observed that append (read dependency T2 -> T3),
    * yet T1 appended 3 to key 256 *after* T3 appended 4 — and T3 completed
      before T1 even began (write and real-time dependencies T3 -> T1).

    Background transactions install the pre-existing elements so the
    observation is complete (every read recoverable).
    """
    b = HistoryBuilder()

    def run(process, mops):
        b.invoke(process, mops)
        return b.ok(process, mops) - 1  # id = invocation index

    run(0, [append(253, 1), append(253, 3), append(253, 4)])
    run(0, [append(255, 2), append(255, 3), append(255, 4), append(255, 5)])
    run(0, [append(256, 1), append(256, 2)])

    t2_mops = [append(255, 8), r(253, [1, 3, 4])]
    t3_mops = [
        append(256, 4),
        r(255, [2, 3, 4, 5, 8]),
        r(256, [1, 2, 4]),
        r(253, [1, 3, 4]),
    ]
    t2 = b.invoke(2, t2_mops)
    t3 = b.invoke(3, t3_mops)
    b.ok(2, t2_mops)
    b.ok(3, t3_mops)

    # T1 begins only after T3 completed: the real-time edge of Figure 3.
    t1_mops = [
        append(250, 10),
        r(253, [1, 3, 4]),
        r(255, [2, 3, 4, 5]),
        append(256, 3),
    ]
    t1 = b.invoke(1, t1_mops)
    b.ok(1, t1_mops)

    # A later read certifies that T1's append of 3 to key 256 really did
    # land after T3's append of 4 — the ww evidence quoted in Figure 2.
    run(0, [r(256, [1, 2, 4, 3])])

    return b.build(), {"T1": t1, "T2": t2, "T3": t3}


def long_fork_history() -> Tuple[History, Dict[str, int]]:
    """The long-fork anomaly from §1: two writes observed in opposite orders.

    T1 and T2 insert x and y; reader R1 sees x but not y, reader R2 sees y
    but not x.  Snapshot isolation forbids this; the checker reports it as a
    G2 cycle (the paper notes long fork is detected but tagged as G2).
    """
    h = History.interleaved(
        ("ok", 0, [append("x", 1)]),
        ("ok", 1, [append("y", 1)]),
        ("ok", 2, [r("x", [1]), r("y", [])]),
        ("ok", 3, [r("x", []), r("y", [1])]),
    )
    t1, t2, r1, r2 = (t.id for t in h.transactions)
    return h, {"T1": t1, "T2": t2, "R1": r1, "R2": r2}


def hserial_history() -> Tuple[History, Dict[str, int]]:
    """Adya et al.'s H_serial (§2), as observed by clients — with registers.

    The version order that makes it serializable is invisible to clients;
    this history is what Elle would actually see.
    """
    h = History.of(
        ("ok", 1, [append("z", 1), append("x", 1), append("y", 1)]),
        ("ok", 2, [r("x", [1]), append("y", 2)]),
        ("ok", 3, [append("x", 3), r("y", [1, 2]), append("z", 3)]),
    )
    t1, t2, t3 = (t.id for t in h.transactions)
    return h, {"T1": t1, "T2": t2, "T3": t3}
